package cloud

import (
	"math"
	"math/rand"
	"testing"

	"tigris/internal/geom"
)

func randVecs(r *rand.Rand, n int) []geom.Vec3 {
	pts := make([]geom.Vec3, n)
	for i := range pts {
		pts[i] = geom.Vec3{
			X: r.Float64()*100 - 50,
			Y: r.Float64()*100 - 50,
			Z: r.Float64()*10 - 5,
		}
	}
	return pts
}

// TestSlabQuantizeOnce pins the precision contract: At(i) returns exactly
// the float32-snapped input (geom.Vec3.Quantize32), and a second round
// trip through the slab is the identity.
func TestSlabQuantizeOnce(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pts := randVecs(r, 500)
	s := SlabFromPoints(pts)
	for i, p := range pts {
		if got, want := s.At(i), p.Quantize32(); got != want {
			t.Fatalf("At(%d) = %v, want Quantize32 %v", i, got, want)
		}
	}
	// Re-ingesting the dequantized points must be lossless.
	s2 := SlabFromPoints(s.Points())
	for i := 0; i < s.Len(); i++ {
		if s.At(i) != s2.At(i) {
			t.Fatalf("second quantization moved point %d", i)
		}
	}
}

func TestSlabRoundTripCloud(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	c := &Cloud{Points: randVecs(r, 200), Normals: randVecs(r, 200)}
	for i, n := range c.Normals {
		c.Normals[i] = n.Normalize()
	}
	s := SlabFromCloud(c)
	if !s.HasNormals() {
		t.Fatal("normals lost on ingest")
	}
	back := s.ToCloud()
	if back.Len() != c.Len() || !back.HasNormals() {
		t.Fatalf("round trip shape: %d points, normals=%v", back.Len(), back.HasNormals())
	}
	for i := range back.Points {
		if back.Points[i] != c.Points[i].Quantize32() {
			t.Fatalf("point %d moved beyond quantization", i)
		}
		if back.Normals[i] != c.Normals[i].Quantize32() {
			t.Fatalf("normal %d moved beyond quantization", i)
		}
	}
}

func TestSlabResetAppendReusesCapacity(t *testing.T) {
	s := NewSlab(0)
	s.EnsureNormals()
	for i := 0; i < 100; i++ {
		s.Append(geom.Vec3{X: float64(i)})
		s.AppendNormal(geom.Vec3{Z: 1})
	}
	capX := cap(s.Xs)
	s.Reset()
	if s.Len() != 0 || !s.HasNormals() {
		t.Fatalf("reset: len=%d normals=%v", s.Len(), s.HasNormals())
	}
	for i := 0; i < 100; i++ {
		s.Append(geom.Vec3{Y: float64(i)})
		s.AppendNormal(geom.Vec3{Z: 1})
	}
	if cap(s.Xs) != capX {
		t.Errorf("append after reset reallocated: cap %d -> %d", capX, cap(s.Xs))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSlabSelectAndClone(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	s := SlabFromCloud(&Cloud{Points: randVecs(r, 50), Normals: randVecs(r, 50)})
	idx := []int{3, 7, 7, 49, 0}
	sel := s.Select(idx)
	if sel.Len() != len(idx) || !sel.HasNormals() {
		t.Fatalf("select shape: %d, normals=%v", sel.Len(), sel.HasNormals())
	}
	for i, j := range idx {
		if sel.At(i) != s.At(j) || sel.NormalAt(i) != s.NormalAt(j) {
			t.Fatalf("select slot %d != source %d", i, j)
		}
	}
	cl := s.Clone()
	cl.SetPoint(0, geom.Vec3{X: 999})
	if s.At(0) == cl.At(0) {
		t.Fatal("clone shares storage with source")
	}
}

// TestSlabBytesHalvesAoS pins the tentpole's storage claim: coordinate
// payload is 12 B/point against the AoS layout's 24, with and without
// normals.
func TestSlabBytesHalvesAoS(t *testing.T) {
	s := NewSlab(1000)
	if got, want := s.Bytes(), int64(12000); got != want {
		t.Fatalf("Bytes = %d, want %d", got, want)
	}
	if s.AosBytes() != 2*s.Bytes() {
		t.Fatalf("AosBytes %d is not 2x Bytes %d", s.AosBytes(), s.Bytes())
	}
	s.EnsureNormals()
	if got, want := s.Bytes(), int64(24000); got != want {
		t.Fatalf("Bytes with normals = %d, want %d", got, want)
	}
	if s.AosBytes() != 2*s.Bytes() {
		t.Fatalf("AosBytes with normals %d is not 2x Bytes %d", s.AosBytes(), s.Bytes())
	}
}

func TestSlabValidateErrors(t *testing.T) {
	bad := &Slab{Xs: make([]float32, 3), Ys: make([]float32, 2), Zs: make([]float32, 3)}
	if bad.Validate() == nil {
		t.Error("unequal axis slices accepted")
	}
	nan := NewSlab(2)
	nan.Xs[1] = float32(math.NaN())
	if nan.Validate() == nil {
		t.Error("NaN coordinate accepted")
	}
	halfN := NewSlab(3)
	halfN.NXs = make([]float32, 3) // NYs/NZs missing
	if halfN.Validate() == nil {
		t.Error("partial normal slabs accepted")
	}
}

// TestVoxelDownsampleSlabMatchesAoS: on pre-snapped input the slab
// downsampler must bucket identically to the AoS one and produce the
// quantized AoS centroids, cell for cell.
func TestVoxelDownsampleSlabMatchesAoS(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	pts := randVecs(r, 2000)
	for i := range pts {
		pts[i] = pts[i].Quantize32()
	}
	aos := VoxelDownsample(FromPoints(pts), 0.7)
	soa := VoxelDownsampleSlab(SlabFromPoints(pts), 0.7)
	if soa.Len() != aos.Len() {
		t.Fatalf("cell counts differ: %d vs %d", soa.Len(), aos.Len())
	}
	for i := 0; i < soa.Len(); i++ {
		if soa.At(i) != aos.Points[i].Quantize32() {
			t.Fatalf("cell %d: slab %v, AoS %v", i, soa.At(i), aos.Points[i].Quantize32())
		}
	}
	// Degenerate leaf: clone semantics.
	same := VoxelDownsampleSlab(SlabFromPoints(pts), 0)
	if same.Len() != len(pts) {
		t.Fatalf("leaf<=0 should clone: %d vs %d", same.Len(), len(pts))
	}
}

func TestSlabTransformInPlace(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	s := SlabFromCloud(&Cloud{Points: randVecs(r, 100), Normals: randVecs(r, 100)})
	before := s.Clone()
	tr := geom.Transform{R: geom.RotZ(0.4), T: geom.Vec3{X: 1, Y: -2, Z: 0.5}}
	s.TransformInPlace(tr)
	for i := 0; i < s.Len(); i++ {
		want := tr.Apply(before.At(i)).Quantize32()
		if s.At(i) != want {
			t.Fatalf("point %d: %v, want %v", i, s.At(i), want)
		}
		wantN := tr.ApplyDirection(before.NormalAt(i)).Quantize32()
		if s.NormalAt(i) != wantN {
			t.Fatalf("normal %d: %v, want %v", i, s.NormalAt(i), wantN)
		}
	}
}

func TestSlabDist2AndComponent(t *testing.T) {
	s := SlabFromPoints([]geom.Vec3{{X: 1, Y: 2, Z: 3}})
	q := geom.Vec3{X: 2, Y: 0, Z: 7}
	if got, want := s.Dist2(q, 0), q.Dist2(s.At(0)); got != want {
		t.Errorf("Dist2 = %v, want %v", got, want)
	}
	for axis, want := range []float64{1, 2, 3} {
		if got := s.Component(0, axis); got != want {
			t.Errorf("Component(0,%d) = %v, want %v", axis, got, want)
		}
	}
}
