package cloud

import (
	"fmt"

	"tigris/internal/geom"
)

// Slab is the structure-of-arrays float32 point store: three contiguous
// per-axis coordinate slices, plus parallel normal slabs when normals
// have been estimated. It is the native representation of the search,
// feature, and ICP hot paths.
//
// Rationale (ROADMAP item 4, paper §search acceleration): the pipeline
// is memory-bound, so layout and precision are first-order performance
// levers. AoS []geom.Vec3 costs 24 B/point and interleaves the axes;
// the slab costs 12 B/point and keeps each axis contiguous, so per-axis
// split comparisons during KD-tree construction and traversal become
// sequential streams and leaf scans touch half the bytes.
//
// Precision contract: coordinates are quantized to float32 exactly once,
// on ingest. Every consumer dequantizes with At and performs all
// arithmetic in float64, so distances, accumulators, and transforms
// behave exactly as they would on an AoS cloud whose coordinates happen
// to be float32-representable. That makes determinism per precision
// trivial: the same slab yields bit-identical results at any
// Parallelism, and geom.Vec3.Quantize32 reproduces the stored values for
// oracles and golden tests.
type Slab struct {
	Xs, Ys, Zs []float32
	// NXs/NYs/NZs carry per-point normals: either all nil or all
	// len(Xs) long (populated by normal estimation).
	NXs, NYs, NZs []float32
}

// NewSlab returns a slab of n zeroed points (no normals).
func NewSlab(n int) *Slab {
	return &Slab{
		Xs: make([]float32, n),
		Ys: make([]float32, n),
		Zs: make([]float32, n),
	}
}

// SlabFromPoints quantizes an AoS point slice into a fresh slab.
func SlabFromPoints(pts []geom.Vec3) *Slab {
	s := NewSlab(len(pts))
	for i, p := range pts {
		s.Xs[i] = float32(p.X)
		s.Ys[i] = float32(p.Y)
		s.Zs[i] = float32(p.Z)
	}
	return s
}

// SlabFromCloud quantizes a cloud (points and, when present, normals)
// into a fresh slab.
func SlabFromCloud(c *Cloud) *Slab {
	s := SlabFromPoints(c.Points)
	if c.HasNormals() {
		s.EnsureNormals()
		for i, n := range c.Normals {
			s.NXs[i] = float32(n.X)
			s.NYs[i] = float32(n.Y)
			s.NZs[i] = float32(n.Z)
		}
	}
	return s
}

// Len returns the number of points.
func (s *Slab) Len() int { return len(s.Xs) }

// At dequantizes point i. All arithmetic downstream runs in float64 on
// these values, so results are independent of how the caller batches or
// parallelizes its reads.
func (s *Slab) At(i int) geom.Vec3 {
	return geom.Vec3{X: float64(s.Xs[i]), Y: float64(s.Ys[i]), Z: float64(s.Zs[i])}
}

// SetPoint quantizes p into slot i.
func (s *Slab) SetPoint(i int, p geom.Vec3) {
	s.Xs[i] = float32(p.X)
	s.Ys[i] = float32(p.Y)
	s.Zs[i] = float32(p.Z)
}

// HasNormals reports whether the normal slabs are populated.
func (s *Slab) HasNormals() bool {
	return s.NXs != nil && len(s.NXs) == len(s.Xs)
}

// EnsureNormals allocates zeroed normal slabs if absent.
func (s *Slab) EnsureNormals() {
	if s.HasNormals() {
		return
	}
	n := s.Len()
	s.NXs = make([]float32, n)
	s.NYs = make([]float32, n)
	s.NZs = make([]float32, n)
}

// NormalAt dequantizes normal i (call only when HasNormals).
func (s *Slab) NormalAt(i int) geom.Vec3 {
	return geom.Vec3{X: float64(s.NXs[i]), Y: float64(s.NYs[i]), Z: float64(s.NZs[i])}
}

// SetNormal quantizes n into normal slot i (call only when HasNormals).
func (s *Slab) SetNormal(i int, n geom.Vec3) {
	s.NXs[i] = float32(n.X)
	s.NYs[i] = float32(n.Y)
	s.NZs[i] = float32(n.Z)
}

// Reset truncates the slab to zero points, keeping the backing arrays so
// appends reuse their capacity. Normal slabs are truncated too (and stay
// active: a slab that had normals still HasNormals after Reset).
func (s *Slab) Reset() {
	s.Xs, s.Ys, s.Zs = s.Xs[:0], s.Ys[:0], s.Zs[:0]
	if s.NXs != nil {
		s.NXs, s.NYs, s.NZs = s.NXs[:0], s.NYs[:0], s.NZs[:0]
	}
}

// Append quantizes p onto the end of the slab. Callers that also append
// normals must keep the two in lockstep (AppendNormal after every
// Append).
func (s *Slab) Append(p geom.Vec3) {
	s.Xs = append(s.Xs, float32(p.X))
	s.Ys = append(s.Ys, float32(p.Y))
	s.Zs = append(s.Zs, float32(p.Z))
}

// AppendNormal quantizes n onto the end of the normal slabs.
func (s *Slab) AppendNormal(n geom.Vec3) {
	s.NXs = append(s.NXs, float32(n.X))
	s.NYs = append(s.NYs, float32(n.Y))
	s.NZs = append(s.NZs, float32(n.Z))
}

// Points materializes the dequantized points as a fresh AoS slice — an
// O(n) copy for diagnostics, tests, and tools; hot paths read At or the
// axis slices directly.
func (s *Slab) Points() []geom.Vec3 {
	pts := make([]geom.Vec3, s.Len())
	for i := range pts {
		pts[i] = s.At(i)
	}
	return pts
}

// ToCloud materializes the slab as an AoS cloud (points and normals).
func (s *Slab) ToCloud() *Cloud {
	c := &Cloud{Points: s.Points()}
	if s.HasNormals() {
		c.Normals = make([]geom.Vec3, s.Len())
		for i := range c.Normals {
			c.Normals[i] = s.NormalAt(i)
		}
	}
	return c
}

// Clone returns a deep copy.
func (s *Slab) Clone() *Slab {
	out := &Slab{
		Xs: append([]float32(nil), s.Xs...),
		Ys: append([]float32(nil), s.Ys...),
		Zs: append([]float32(nil), s.Zs...),
	}
	if s.HasNormals() {
		out.NXs = append([]float32(nil), s.NXs...)
		out.NYs = append([]float32(nil), s.NYs...)
		out.NZs = append([]float32(nil), s.NZs...)
	}
	return out
}

// Select returns a new slab containing the points (and normals, if
// present) at the given indices.
func (s *Slab) Select(indices []int) *Slab {
	out := NewSlab(len(indices))
	for i, idx := range indices {
		out.Xs[i] = s.Xs[idx]
		out.Ys[i] = s.Ys[idx]
		out.Zs[i] = s.Zs[idx]
	}
	if s.HasNormals() {
		out.EnsureNormals()
		for i, idx := range indices {
			out.NXs[i] = s.NXs[idx]
			out.NYs[i] = s.NYs[idx]
			out.NZs[i] = s.NZs[idx]
		}
	}
	return out
}

// TransformInPlace moves every point by t and rotates the normals,
// computing in float64 and re-quantizing the results.
func (s *Slab) TransformInPlace(t geom.Transform) {
	for i := range s.Xs {
		s.SetPoint(i, t.Apply(s.At(i)))
	}
	if s.HasNormals() {
		for i := range s.NXs {
			s.SetNormal(i, t.ApplyDirection(s.NormalAt(i)))
		}
	}
}

// Bounds returns the axis-aligned bounding box of the dequantized points.
func (s *Slab) Bounds() geom.Aabb {
	b := geom.EmptyAabb()
	for i := range s.Xs {
		b.Extend(s.At(i))
	}
	return b
}

// Centroid returns the float64 mean of the dequantized points; the zero
// vector for an empty slab.
func (s *Slab) Centroid() geom.Vec3 {
	if s.Len() == 0 {
		return geom.Vec3{}
	}
	var sum geom.Vec3
	for i := range s.Xs {
		sum = sum.Add(s.At(i))
	}
	return sum.Scale(1 / float64(s.Len()))
}

// Bytes returns the slab's point-storage footprint: coordinate and
// normal payload bytes. This is the number the bench reports as
// point-storage bytes/frame (an AoS float64 layout of the same content
// would cost AosBytes).
func (s *Slab) Bytes() int64 {
	b := int64(len(s.Xs)+len(s.Ys)+len(s.Zs)) * 4
	b += int64(len(s.NXs)+len(s.NYs)+len(s.NZs)) * 4
	return b
}

// AosBytes returns what the same content would cost in the pre-slab AoS
// []geom.Vec3 layout (24 B/point, plus 24 B/normal when present) — the
// denominator of the bench's layout-reduction ratio.
func (s *Slab) AosBytes() int64 {
	b := int64(s.Len()) * 24
	if s.HasNormals() {
		b += int64(s.Len()) * 24
	}
	return b
}

// Validate checks structural invariants: equal-length axis slices,
// finite coordinates, and normal slabs either absent or parallel.
func (s *Slab) Validate() error {
	if len(s.Ys) != len(s.Xs) || len(s.Zs) != len(s.Xs) {
		return fmt.Errorf("slab: axis slices differ: %d/%d/%d", len(s.Xs), len(s.Ys), len(s.Zs))
	}
	hasN := s.NXs != nil || s.NYs != nil || s.NZs != nil
	if hasN && (len(s.NXs) != len(s.Xs) || len(s.NYs) != len(s.Xs) || len(s.NZs) != len(s.Xs)) {
		return fmt.Errorf("slab: normal slabs not parallel: %d/%d/%d for %d points",
			len(s.NXs), len(s.NYs), len(s.NZs), len(s.Xs))
	}
	for i := range s.Xs {
		if !s.At(i).IsFinite() {
			return fmt.Errorf("slab: non-finite point %d: %v", i, s.At(i))
		}
	}
	return nil
}

// Dist2 returns the squared float64 distance between q and point i —
// the hot-path kernel shared by every search structure. The dequantized
// float64 arithmetic keeps results bit-identical to computing
// q.Dist2(s.At(i)).
func (s *Slab) Dist2(q geom.Vec3, i int) float64 {
	dx := q.X - float64(s.Xs[i])
	dy := q.Y - float64(s.Ys[i])
	dz := q.Z - float64(s.Zs[i])
	return dx*dx + dy*dy + dz*dz
}

// Component returns point i's axis-indexed coordinate as float64
// (0→X, 1→Y, 2→Z), mirroring geom.Vec3.Component for slab consumers.
func (s *Slab) Component(i, axis int) float64 {
	switch axis {
	case 0:
		return float64(s.Xs[i])
	case 1:
		return float64(s.Ys[i])
	default:
		return float64(s.Zs[i])
	}
}
