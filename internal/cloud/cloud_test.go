package cloud

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"tigris/internal/geom"
)

func randCloud(r *rand.Rand, n int) *Cloud {
	c := New(n)
	for i := 0; i < n; i++ {
		c.Points = append(c.Points, geom.Vec3{
			X: r.Float64()*40 - 20,
			Y: r.Float64()*40 - 20,
			Z: r.Float64()*4 - 2,
		})
	}
	return c
}

func TestCloneIndependence(t *testing.T) {
	c := FromPoints([]geom.Vec3{{X: 1}, {Y: 2}})
	c.Normals = []geom.Vec3{{Z: 1}, {Z: 1}}
	d := c.Clone()
	d.Points[0].X = 99
	d.Normals[0].Z = 99
	if c.Points[0].X != 1 || c.Normals[0].Z != 1 {
		t.Error("clone shares storage with original")
	}
}

func TestTransformRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	c := randCloud(r, 200)
	tr := geom.Transform{R: geom.RotZ(0.4), T: geom.Vec3{X: 1, Y: -2, Z: 3}}
	back := c.Transform(tr).Transform(tr.Inverse())
	for i := range c.Points {
		if c.Points[i].Dist(back.Points[i]) > 1e-9 {
			t.Fatalf("round trip moved point %d", i)
		}
	}
}

func TestTransformInPlaceMatchesTransform(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	c := randCloud(r, 100)
	c.Normals = make([]geom.Vec3, c.Len())
	for i := range c.Normals {
		c.Normals[i] = geom.Vec3{Z: 1}
	}
	tr := geom.Transform{R: geom.RotX(0.7), T: geom.Vec3{X: 5}}
	want := c.Transform(tr)
	c.TransformInPlace(tr)
	for i := range c.Points {
		if c.Points[i] != want.Points[i] || c.Normals[i] != want.Normals[i] {
			t.Fatalf("in-place transform mismatch at %d", i)
		}
	}
}

func TestNormalsRotateNotTranslate(t *testing.T) {
	c := FromPoints([]geom.Vec3{{X: 1, Y: 2, Z: 3}})
	c.Normals = []geom.Vec3{{Z: 1}}
	tr := geom.Transform{R: geom.Identity3(), T: geom.Vec3{X: 100, Y: 100, Z: 100}}
	out := c.Transform(tr)
	if out.Normals[0] != (geom.Vec3{Z: 1}) {
		t.Errorf("pure translation changed normal: %v", out.Normals[0])
	}
}

func TestCentroid(t *testing.T) {
	c := FromPoints([]geom.Vec3{{X: 1}, {X: 3}, {Y: 2}, {Y: -2}})
	got := c.Centroid()
	if got.Dist(geom.Vec3{X: 1}) > 1e-12 {
		t.Errorf("centroid = %v", got)
	}
	if (&Cloud{}).Centroid() != (geom.Vec3{}) {
		t.Error("empty centroid should be zero")
	}
}

func TestBounds(t *testing.T) {
	c := FromPoints([]geom.Vec3{{X: -1, Y: 2, Z: 0}, {X: 3, Y: -4, Z: 5}})
	b := c.Bounds()
	if b.Min != (geom.Vec3{X: -1, Y: -4, Z: 0}) || b.Max != (geom.Vec3{X: 3, Y: 2, Z: 5}) {
		t.Errorf("bounds = %+v", b)
	}
}

func TestSelect(t *testing.T) {
	c := FromPoints([]geom.Vec3{{X: 0}, {X: 1}, {X: 2}, {X: 3}})
	c.Normals = []geom.Vec3{{Z: 0}, {Z: 1}, {Z: 2}, {Z: 3}}
	s := c.Select([]int{3, 1})
	if s.Len() != 2 || s.Points[0].X != 3 || s.Points[1].X != 1 {
		t.Errorf("select points = %v", s.Points)
	}
	if s.Normals[0].Z != 3 || s.Normals[1].Z != 1 {
		t.Errorf("select normals = %v", s.Normals)
	}
}

func TestVoxelDownsampleReduces(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	c := randCloud(r, 5000)
	d := VoxelDownsample(c, 2.0)
	if d.Len() >= c.Len() {
		t.Fatalf("downsample did not reduce: %d -> %d", c.Len(), d.Len())
	}
	if d.Len() == 0 {
		t.Fatal("downsample removed everything")
	}
	// Every output point must lie within the original bounds (centroids of
	// cell members cannot escape the hull of the inputs).
	b := c.Bounds()
	for _, p := range d.Points {
		if !b.Contains(p) {
			t.Fatalf("downsampled point %v escaped bounds", p)
		}
	}
}

func TestVoxelDownsampleOnePerCell(t *testing.T) {
	c := FromPoints([]geom.Vec3{
		{X: 0.1, Y: 0.1, Z: 0.1},
		{X: 0.2, Y: 0.3, Z: 0.4}, // same unit cell
		{X: 1.5, Y: 0.1, Z: 0.1}, // different cell
	})
	d := VoxelDownsample(c, 1.0)
	if d.Len() != 2 {
		t.Fatalf("expected 2 cells, got %d", d.Len())
	}
	// First output is the centroid of the two co-located points.
	want := geom.Vec3{X: 0.15, Y: 0.2, Z: 0.25}
	if d.Points[0].Dist(want) > 1e-12 {
		t.Errorf("cell centroid = %v, want %v", d.Points[0], want)
	}
}

func TestVoxelDownsampleDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	c := randCloud(r, 1000)
	a := VoxelDownsample(c, 1.5)
	b := VoxelDownsample(c, 1.5)
	if a.Len() != b.Len() {
		t.Fatal("non-deterministic length")
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatal("non-deterministic ordering")
		}
	}
}

func TestVoxelDownsampleNoopLeaf(t *testing.T) {
	c := FromPoints([]geom.Vec3{{X: 1}, {X: 2}})
	d := VoxelDownsample(c, 0)
	if d.Len() != 2 {
		t.Fatal("leaf<=0 should clone")
	}
}

func TestValidate(t *testing.T) {
	good := FromPoints([]geom.Vec3{{X: 1}})
	if err := good.Validate(); err != nil {
		t.Errorf("valid cloud rejected: %v", err)
	}
	bad := FromPoints([]geom.Vec3{{X: math.NaN()}})
	if err := bad.Validate(); err == nil {
		t.Error("NaN point accepted")
	}
	mismatched := FromPoints([]geom.Vec3{{X: 1}, {X: 2}})
	mismatched.Normals = []geom.Vec3{{Z: 1}}
	if err := mismatched.Validate(); err == nil {
		t.Error("mismatched normals accepted")
	}
}

func TestIORoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	c := randCloud(r, 500)
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != c.Len() {
		t.Fatalf("length %d -> %d", c.Len(), back.Len())
	}
	for i := range c.Points {
		if c.Points[i].Dist(back.Points[i]) > 1e-7 {
			t.Fatalf("point %d: %v -> %v", i, c.Points[i], back.Points[i])
		}
	}
	if back.HasNormals() {
		t.Error("round trip invented normals")
	}
}

func TestIORoundTripWithNormals(t *testing.T) {
	c := FromPoints([]geom.Vec3{{X: 1, Y: 2, Z: 3}})
	c.Normals = []geom.Vec3{{X: 0, Y: 0, Z: 1}}
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.HasNormals() || back.Normals[0] != c.Normals[0] {
		t.Errorf("normals lost: %+v", back.Normals)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"NOT-A-CLOUD",
		"TIGRIS-CLOUD v1\nPOINTS abc\nFIELDS xyz\nDATA ascii\n",
		"TIGRIS-CLOUD v1\nPOINTS 1\nFIELDS wat\nDATA ascii\n1 2 3\n",
		"TIGRIS-CLOUD v1\nPOINTS 1\nFIELDS xyz\nDATA binary\n1 2 3\n",
		"TIGRIS-CLOUD v1\nPOINTS 2\nFIELDS xyz\nDATA ascii\n1 2 3\n", // truncated
		"TIGRIS-CLOUD v1\nPOINTS 1\nFIELDS xyz\nDATA ascii\n1 2\n",   // short row
		"TIGRIS-CLOUD v1\nPOINTS -5\nFIELDS xyz\nDATA ascii\n",
	}
	for i, s := range cases {
		if _, err := Read(strings.NewReader(s)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestIOEmptyCloud(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, New(0)); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 {
		t.Errorf("empty cloud round trip gained points: %d", back.Len())
	}
}
