package cloud

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"tigris/internal/geom"
)

// The ASCII interchange format is a minimal PCD-style layout:
//
//	TIGRIS-CLOUD v1
//	POINTS <n>
//	FIELDS xyz | xyznormal
//	DATA ascii
//	x y z [nx ny nz]
//	...
//
// It exists so the example binaries can persist and reload frames, and so
// users can export synthetic sequences for external inspection.

const (
	magicLine   = "TIGRIS-CLOUD v1"
	fieldsXYZ   = "xyz"
	fieldsXYZN  = "xyznormal"
	maxIOPoints = 100_000_000
)

// Write serializes the cloud to w in the ASCII format above.
func Write(w io.Writer, c *Cloud) error {
	bw := bufio.NewWriter(w)
	fields := fieldsXYZ
	if c.HasNormals() {
		fields = fieldsXYZN
	}
	if _, err := fmt.Fprintf(bw, "%s\nPOINTS %d\nFIELDS %s\nDATA ascii\n", magicLine, c.Len(), fields); err != nil {
		return err
	}
	for i, p := range c.Points {
		if c.HasNormals() {
			n := c.Normals[i]
			if _, err := fmt.Fprintf(bw, "%.9g %.9g %.9g %.9g %.9g %.9g\n", p.X, p.Y, p.Z, n.X, n.Y, n.Z); err != nil {
				return err
			}
		} else {
			if _, err := fmt.Fprintf(bw, "%.9g %.9g %.9g\n", p.X, p.Y, p.Z); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read parses a cloud previously produced by Write.
func Read(r io.Reader) (*Cloud, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	line, err := nextLine(sc)
	if err != nil {
		return nil, err
	}
	if line != magicLine {
		return nil, fmt.Errorf("cloud: bad magic %q", line)
	}

	var n int
	if line, err = nextLine(sc); err != nil {
		return nil, err
	}
	if _, err := fmt.Sscanf(line, "POINTS %d", &n); err != nil {
		return nil, fmt.Errorf("cloud: bad POINTS line %q: %w", line, err)
	}
	if n < 0 || n > maxIOPoints {
		return nil, fmt.Errorf("cloud: unreasonable point count %d", n)
	}

	if line, err = nextLine(sc); err != nil {
		return nil, err
	}
	var fields string
	if _, err := fmt.Sscanf(line, "FIELDS %s", &fields); err != nil {
		return nil, fmt.Errorf("cloud: bad FIELDS line %q: %w", line, err)
	}
	withNormals := false
	switch fields {
	case fieldsXYZ:
	case fieldsXYZN:
		withNormals = true
	default:
		return nil, fmt.Errorf("cloud: unknown fields %q", fields)
	}

	if line, err = nextLine(sc); err != nil {
		return nil, err
	}
	if line != "DATA ascii" {
		return nil, fmt.Errorf("cloud: unsupported data line %q", line)
	}

	c := &Cloud{Points: make([]geom.Vec3, 0, n)}
	if withNormals {
		c.Normals = make([]geom.Vec3, 0, n)
	}
	for i := 0; i < n; i++ {
		if line, err = nextLine(sc); err != nil {
			return nil, fmt.Errorf("cloud: point %d: %w", i, err)
		}
		parts := strings.Fields(line)
		want := 3
		if withNormals {
			want = 6
		}
		if len(parts) != want {
			return nil, fmt.Errorf("cloud: point %d has %d fields, want %d", i, len(parts), want)
		}
		vals := make([]float64, want)
		for j, s := range parts {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("cloud: point %d field %d: %w", i, j, err)
			}
			vals[j] = v
		}
		c.Points = append(c.Points, geom.Vec3{X: vals[0], Y: vals[1], Z: vals[2]})
		if withNormals {
			c.Normals = append(c.Normals, geom.Vec3{X: vals[3], Y: vals[4], Z: vals[5]})
		}
	}
	return c, nil
}

// nextLine returns the next non-empty line.
func nextLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			return line, nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}
