package search

import (
	"time"

	"tigris/internal/cloud"
	"tigris/internal/geom"
	"tigris/internal/kdtree"
	"tigris/internal/par"
)

// BruteSearcher answers every query by linear scan. It is the degenerate
// structure the paper's §4.1 taxonomy starts from (a two-stage tree with
// top height 0 is exactly one brute-forced leaf), the correctness oracle
// the tree backends are tested against, and — because it builds in O(1) —
// the fastest end-to-end choice for tiny clouds where tree construction
// dominates query time. It registers as the "bruteforce" backend.
type BruteSearcher struct {
	slab        *cloud.Slab
	stats       kdtree.Stats
	metrics     Metrics
	parallelism int
}

// NewBruteSearcher quantizes pts into a fresh SoA slab without building
// any index; BuildTime records only the quantization pass.
func NewBruteSearcher(pts []geom.Vec3) *BruteSearcher {
	s := &BruteSearcher{parallelism: par.Workers(0)}
	start := time.Now()
	s.slab = cloud.SlabFromPoints(pts)
	s.metrics.BuildTime = time.Since(start)
	return s
}

// NewBruteSearcherSlab wraps an existing slab without copying or
// indexing; BuildTime is recorded (and is effectively zero).
func NewBruteSearcherSlab(slab *cloud.Slab) *BruteSearcher {
	s := &BruteSearcher{parallelism: par.Workers(0)}
	start := time.Now()
	s.slab = slab
	s.metrics.BuildTime = time.Since(start)
	return s
}

// SetParallelism implements Searcher.
func (s *BruteSearcher) SetParallelism(n int) { s.parallelism = par.Workers(n) }

// Parallelism implements Searcher.
func (s *BruteSearcher) Parallelism() int { return s.parallelism }

// Nearest implements Searcher.
func (s *BruteSearcher) Nearest(q geom.Vec3) (kdtree.Neighbor, bool) {
	start := time.Now()
	nb, ok := kdtree.BruteNearestSlab(s.slab, q)
	s.count(&s.stats)
	s.record(start)
	return nb, ok
}

// KNearest implements Searcher.
func (s *BruteSearcher) KNearest(q geom.Vec3, k int) []kdtree.Neighbor {
	start := time.Now()
	res := kdtree.BruteKNearestIntoSlab(s.slab, q, k, nil)
	s.count(&s.stats)
	s.record(start)
	return res
}

// Radius implements Searcher.
func (s *BruteSearcher) Radius(q geom.Vec3, r float64) []kdtree.Neighbor {
	start := time.Now()
	res := kdtree.BruteRadiusIntoSlab(s.slab, q, r, nil)
	s.count(&s.stats)
	s.record(start)
	return res
}

// NearestBatch implements Searcher.
func (s *BruteSearcher) NearestBatch(qs []geom.Vec3) []kdtree.Neighbor {
	return s.NearestBatchInto(qs, nil)
}

// NearestBatchInto is NearestBatch answering into buf (see
// BatchNearestInto for the contract).
func (s *BruteSearcher) NearestBatchInto(qs []geom.Vec3, buf []kdtree.Neighbor) []kdtree.Neighbor {
	start := time.Now()
	out := growNeighbors(buf, len(qs))
	par.Sharded(len(qs), s.parallelism,
		func(shard *kdtree.Stats, i int) {
			nb, ok := kdtree.BruteNearestSlab(s.slab, qs[i])
			if !ok {
				nb = missNeighbor()
			}
			out[i] = nb
			s.count(shard)
		},
		func(shard *kdtree.Stats) { s.stats.Merge(*shard) })
	s.record(start)
	return out
}

// KNearestBatch implements Searcher. Result slices come from the shared
// slab pool; consumers that drain the batch may return them with
// RecycleBatch.
func (s *BruteSearcher) KNearestBatch(qs []geom.Vec3, k int) [][]kdtree.Neighbor {
	start := time.Now()
	out := make([][]kdtree.Neighbor, len(qs))
	par.Sharded(len(qs), s.parallelism,
		func(shard *kdtree.Stats, i int) {
			out[i] = knnPooled(func(buf []kdtree.Neighbor) []kdtree.Neighbor {
				return kdtree.BruteKNearestIntoSlab(s.slab, qs[i], k, buf)
			})
			s.count(shard)
		},
		func(shard *kdtree.Stats) { s.stats.Merge(*shard) })
	s.record(start)
	return out
}

// RadiusBatch implements Searcher; see KNearestBatch for the slab
// contract.
func (s *BruteSearcher) RadiusBatch(qs []geom.Vec3, r float64) [][]kdtree.Neighbor {
	start := time.Now()
	out := make([][]kdtree.Neighbor, len(qs))
	par.Sharded(len(qs), s.parallelism,
		func(shard *kdtree.Stats, i int) {
			out[i] = radiusPooled(func(buf []kdtree.Neighbor) []kdtree.Neighbor {
				return kdtree.BruteRadiusIntoSlab(s.slab, qs[i], r, buf)
			})
			s.count(shard)
		},
		func(shard *kdtree.Stats) { s.stats.Merge(*shard) })
	s.record(start)
	return out
}

// count charges one query's work to a stats shard: a linear scan computes
// every point's distance.
func (s *BruteSearcher) count(stats *kdtree.Stats) {
	stats.Queries++
	stats.NodesVisited += int64(s.slab.Len())
}

// Slab implements Searcher.
func (s *BruteSearcher) Slab() *cloud.Slab { return s.slab }

// Metrics implements Searcher.
func (s *BruteSearcher) Metrics() *Metrics {
	s.metrics.Queries = s.stats.Queries
	s.metrics.NodesVisited = s.stats.NodesVisited
	return &s.metrics
}

func (s *BruteSearcher) record(start time.Time) {
	s.metrics.SearchTime += time.Since(start)
}
