package search

import (
	"sync"
	"time"

	"tigris/internal/geom"
	"tigris/internal/kdtree"
	"tigris/internal/par"
	"tigris/internal/twostage"
)

// This file implements the batch side of the Searcher interface once, as a
// thin layer over internal/par: every backend runs its per-query kernel on
// a worker pool, with one stats shard per worker merged after the batch.
// Because each query is independent and results are written positionally,
// the exact backends return bit-identical output to the sequential
// methods for any worker count.

// ApproxBatchChunk is the number of consecutive batch queries served by
// one leader/follower session when the approximate backend answers a
// batch. Chunk boundaries depend only on the batch, never on the worker
// count, so approximate batch results are invariant under Parallelism.
// The chunk bounds how much leader state a worker accumulates, mirroring
// the accelerator's small per-stage Leader Buffers (§5.3).
const ApproxBatchChunk = 256

// missNeighbor marks a NearestBatch entry with no result (empty tree).
func missNeighbor() kdtree.Neighbor { return kdtree.Neighbor{Index: -1} }

// neighborSlabs pools per-query radius result buffers. Radius search is
// the dominant query kind of the front-end (normal estimation, key-point
// responses, descriptor support regions), and a streaming session issues
// millions of such queries per frame forever; drawing result slabs from
// a pool and letting the stage hand them back via RecycleBatch removes
// that steady-state churn. Slabs converge to the largest neighborhood
// size seen, so after warm-up a batch allocates only its header.
var neighborSlabs = sync.Pool{
	New: func() any {
		s := make([]kdtree.Neighbor, 0, 64)
		return &s
	},
}

func getNeighborSlab() []kdtree.Neighbor {
	return *neighborSlabs.Get().(*[]kdtree.Neighbor)
}

func putNeighborSlab(s []kdtree.Neighbor) {
	s = s[:0]
	neighborSlabs.Put(&s)
}

// RecycleBatch returns every per-query slice of a batch result to the
// slab pool and clears the entries. Callers that fully consume a
// RadiusBatch/KNearestBatch result may hand it back so the next batch
// reuses the capacity; no reference to any entry may be retained. The
// entries need not have come from the pool — any slab is welcome.
func RecycleBatch(res [][]kdtree.Neighbor) {
	for i, s := range res {
		if cap(s) > 0 {
			putNeighborSlab(s)
		}
		res[i] = nil
	}
}

// radiusPooled answers one radius query into a pooled slab, preserving
// the sequential nil-result convention (misses return nil, and the
// untouched slab goes straight back to the pool).
func radiusPooled(radiusInto func(buf []kdtree.Neighbor) []kdtree.Neighbor) []kdtree.Neighbor {
	buf := getNeighborSlab()
	res := radiusInto(buf)
	if len(res) == 0 {
		putNeighborSlab(buf)
		return nil
	}
	return res
}

// knnPooled is radiusPooled's k-NN twin: one k-NN query answered into a
// pooled slab, with empty results handing the slab straight back.
func knnPooled(knnInto func(buf []kdtree.Neighbor) []kdtree.Neighbor) []kdtree.Neighbor {
	buf := getNeighborSlab()
	res := knnInto(buf)
	if len(res) == 0 {
		putNeighborSlab(buf)
		return nil
	}
	return res
}

// nearestInto is the optional fast-path capability behind BatchNearestInto.
type nearestInto interface {
	NearestBatchInto(qs []geom.Vec3, buf []kdtree.Neighbor) []kdtree.Neighbor
}

// BatchNearestInto answers a NearestBatch into buf (reset to length 0,
// regrown as needed) when the backend supports in-place batches — every
// built-in structure does — and falls back to a plain NearestBatch
// otherwise. Results are identical either way; the Into path lets hot
// loops that issue one batch per iteration (ICP's RPCE) reuse a single
// result slab for the life of the loop instead of allocating
// len(qs)-sized slices every iteration.
func BatchNearestInto(s Searcher, qs []geom.Vec3, buf []kdtree.Neighbor) []kdtree.Neighbor {
	if bi, ok := s.(nearestInto); ok {
		return bi.NearestBatchInto(qs, buf)
	}
	return s.NearestBatch(qs)
}

// growNeighbors returns buf reset to length n, reallocating only when the
// capacity is short.
func growNeighbors(buf []kdtree.Neighbor, n int) []kdtree.Neighbor {
	if cap(buf) < n {
		return make([]kdtree.Neighbor, n)
	}
	return buf[:n]
}

// --- KDSearcher ---------------------------------------------------------

// NearestBatch implements Searcher.
func (s *KDSearcher) NearestBatch(qs []geom.Vec3) []kdtree.Neighbor {
	return s.NearestBatchInto(qs, nil)
}

// NearestBatchInto is NearestBatch answering into buf (see
// BatchNearestInto for the contract).
func (s *KDSearcher) NearestBatchInto(qs []geom.Vec3, buf []kdtree.Neighbor) []kdtree.Neighbor {
	start := time.Now()
	out := growNeighbors(buf, len(qs))
	par.Sharded(len(qs), s.parallelism,
		func(shard *kdtree.Stats, i int) {
			nb, ok := s.tree.Nearest(qs[i], shard)
			if !ok {
				nb = missNeighbor()
			}
			out[i] = nb
		},
		func(shard *kdtree.Stats) { s.stats.Merge(*shard) })
	s.record(start)
	return out
}

// KNearestBatch implements Searcher. Result slices come from the shared
// slab pool (each slab doubles as the query's candidate heap); consumers
// that drain the batch may return them with RecycleBatch.
func (s *KDSearcher) KNearestBatch(qs []geom.Vec3, k int) [][]kdtree.Neighbor {
	start := time.Now()
	out := make([][]kdtree.Neighbor, len(qs))
	par.Sharded(len(qs), s.parallelism,
		func(shard *kdtree.Stats, i int) {
			out[i] = knnPooled(func(buf []kdtree.Neighbor) []kdtree.Neighbor {
				return s.tree.KNearestInto(qs[i], k, buf, shard)
			})
		},
		func(shard *kdtree.Stats) { s.stats.Merge(*shard) })
	s.record(start)
	return out
}

// RadiusBatch implements Searcher. Result slices come from the shared
// slab pool; consumers that drain the batch may return them with
// RecycleBatch.
func (s *KDSearcher) RadiusBatch(qs []geom.Vec3, r float64) [][]kdtree.Neighbor {
	start := time.Now()
	out := make([][]kdtree.Neighbor, len(qs))
	par.Sharded(len(qs), s.parallelism,
		func(shard *kdtree.Stats, i int) {
			out[i] = radiusPooled(func(buf []kdtree.Neighbor) []kdtree.Neighbor {
				return s.tree.RadiusInto(qs[i], r, buf, shard)
			})
		},
		func(shard *kdtree.Stats) { s.stats.Merge(*shard) })
	s.record(start)
	return out
}

// --- TwoStageSearcher ---------------------------------------------------

// NearestBatch implements Searcher. With approximation enabled the batch
// is served chunk-by-chunk with a fresh per-worker leader/follower session
// per chunk (the paper's "one session per stage invocation" model), which
// makes the result a deterministic function of the batch alone.
func (s *TwoStageSearcher) NearestBatch(qs []geom.Vec3) []kdtree.Neighbor {
	return s.NearestBatchInto(qs, nil)
}

// NearestBatchInto is NearestBatch answering into buf (see
// BatchNearestInto for the contract).
func (s *TwoStageSearcher) NearestBatchInto(qs []geom.Vec3, buf []kdtree.Neighbor) []kdtree.Neighbor {
	start := time.Now()
	out := growNeighbors(buf, len(qs))
	if s.approx != nil {
		s.approxChunked(len(qs), func(sess *twostage.ApproxSession, shard *twostage.Stats, i int) {
			nb, ok := sess.Nearest(qs[i], shard)
			if !ok {
				nb = missNeighbor()
			}
			out[i] = nb
		})
	} else {
		par.Sharded(len(qs), s.parallelism,
			func(shard *twostage.Stats, i int) {
				nb, ok := s.tree.Nearest(qs[i], shard)
				if !ok {
					nb = missNeighbor()
				}
				out[i] = nb
			},
			func(shard *twostage.Stats) { s.stats.Merge(*shard) })
	}
	s.record(start)
	return out
}

// KNearestBatch implements Searcher. k-NN is always exact (see KNearest).
func (s *TwoStageSearcher) KNearestBatch(qs []geom.Vec3, k int) [][]kdtree.Neighbor {
	start := time.Now()
	out := make([][]kdtree.Neighbor, len(qs))
	par.Sharded(len(qs), s.parallelism,
		func(shard *twostage.Stats, i int) {
			out[i] = s.kNearest(qs[i], k, shard)
		},
		func(shard *twostage.Stats) { s.stats.Merge(*shard) })
	s.record(start)
	return out
}

// RadiusBatch implements Searcher; see NearestBatch for the approximate
// chunking semantics.
func (s *TwoStageSearcher) RadiusBatch(qs []geom.Vec3, r float64) [][]kdtree.Neighbor {
	start := time.Now()
	out := make([][]kdtree.Neighbor, len(qs))
	if s.approx != nil {
		s.approxChunked(len(qs), func(sess *twostage.ApproxSession, shard *twostage.Stats, i int) {
			out[i] = sess.Radius(qs[i], r, shard)
		})
	} else {
		par.Sharded(len(qs), s.parallelism,
			func(shard *twostage.Stats, i int) {
				out[i] = radiusPooled(func(buf []kdtree.Neighbor) []kdtree.Neighbor {
					return s.tree.RadiusInto(qs[i], r, buf, shard)
				})
			},
			func(shard *twostage.Stats) { s.stats.Merge(*shard) })
	}
	s.record(start)
	return out
}

// approxChunked runs one approximate query kernel over fixed-size chunks
// of the batch. Every chunk starts from empty leader state — each worker
// keeps one session and Resets it between chunks instead of allocating
// O(leaves) of fresh buffers per chunk — so leader state never crosses
// chunk (or worker) boundaries and results are independent of which
// worker executes which chunk. Each worker also owns a stats shard for
// the chunks it happens to execute.
func (s *TwoStageSearcher) approxChunked(n int, run func(sess *twostage.ApproxSession, shard *twostage.Stats, i int)) {
	workers := s.parallelism
	shards := make([]twostage.Stats, workers)
	for len(s.workerSessions) < workers {
		s.workerSessions = append(s.workerSessions, nil)
	}
	par.ForChunks(n, workers, ApproxBatchChunk, func(w, lo, hi int) {
		sess := s.workerSessions[w]
		if sess == nil {
			sess = s.tree.NewApproxSession(*s.approx)
			s.workerSessions[w] = sess
		} else {
			sess.Reset()
		}
		for i := lo; i < hi; i++ {
			run(sess, &shards[w], i)
		}
	})
	for w := range shards {
		s.stats.Merge(shards[w])
	}
}
