package search

import (
	"time"

	"tigris/internal/geom"
	"tigris/internal/kdtree"
	"tigris/internal/par"
	"tigris/internal/twostage"
)

// This file implements the batch side of the Searcher interface once, as a
// thin layer over internal/par: every backend runs its per-query kernel on
// a worker pool, with one stats shard per worker merged after the batch.
// Because each query is independent and results are written positionally,
// the exact backends return bit-identical output to the sequential
// methods for any worker count.

// ApproxBatchChunk is the number of consecutive batch queries served by
// one leader/follower session when the approximate backend answers a
// batch. Chunk boundaries depend only on the batch, never on the worker
// count, so approximate batch results are invariant under Parallelism.
// The chunk bounds how much leader state a worker accumulates, mirroring
// the accelerator's small per-stage Leader Buffers (§5.3).
const ApproxBatchChunk = 256

// missNeighbor marks a NearestBatch entry with no result (empty tree).
func missNeighbor() kdtree.Neighbor { return kdtree.Neighbor{Index: -1} }

// --- KDSearcher ---------------------------------------------------------

// NearestBatch implements Searcher.
func (s *KDSearcher) NearestBatch(qs []geom.Vec3) []kdtree.Neighbor {
	start := time.Now()
	out := make([]kdtree.Neighbor, len(qs))
	par.Sharded(len(qs), s.parallelism,
		func(shard *kdtree.Stats, i int) {
			nb, ok := s.tree.Nearest(qs[i], shard)
			if !ok {
				nb = missNeighbor()
			}
			out[i] = nb
		},
		func(shard *kdtree.Stats) { s.stats.Merge(*shard) })
	s.record(start)
	return out
}

// KNearestBatch implements Searcher.
func (s *KDSearcher) KNearestBatch(qs []geom.Vec3, k int) [][]kdtree.Neighbor {
	start := time.Now()
	out := make([][]kdtree.Neighbor, len(qs))
	par.Sharded(len(qs), s.parallelism,
		func(shard *kdtree.Stats, i int) {
			out[i] = s.tree.KNearest(qs[i], k, shard)
		},
		func(shard *kdtree.Stats) { s.stats.Merge(*shard) })
	s.record(start)
	return out
}

// RadiusBatch implements Searcher.
func (s *KDSearcher) RadiusBatch(qs []geom.Vec3, r float64) [][]kdtree.Neighbor {
	start := time.Now()
	out := make([][]kdtree.Neighbor, len(qs))
	par.Sharded(len(qs), s.parallelism,
		func(shard *kdtree.Stats, i int) {
			out[i] = s.tree.Radius(qs[i], r, shard)
		},
		func(shard *kdtree.Stats) { s.stats.Merge(*shard) })
	s.record(start)
	return out
}

// --- TwoStageSearcher ---------------------------------------------------

// NearestBatch implements Searcher. With approximation enabled the batch
// is served chunk-by-chunk with a fresh per-worker leader/follower session
// per chunk (the paper's "one session per stage invocation" model), which
// makes the result a deterministic function of the batch alone.
func (s *TwoStageSearcher) NearestBatch(qs []geom.Vec3) []kdtree.Neighbor {
	start := time.Now()
	out := make([]kdtree.Neighbor, len(qs))
	if s.approx != nil {
		s.approxChunked(len(qs), func(sess *twostage.ApproxSession, shard *twostage.Stats, i int) {
			nb, ok := sess.Nearest(qs[i], shard)
			if !ok {
				nb = missNeighbor()
			}
			out[i] = nb
		})
	} else {
		par.Sharded(len(qs), s.parallelism,
			func(shard *twostage.Stats, i int) {
				nb, ok := s.tree.Nearest(qs[i], shard)
				if !ok {
					nb = missNeighbor()
				}
				out[i] = nb
			},
			func(shard *twostage.Stats) { s.stats.Merge(*shard) })
	}
	s.record(start)
	return out
}

// KNearestBatch implements Searcher. k-NN is always exact (see KNearest).
func (s *TwoStageSearcher) KNearestBatch(qs []geom.Vec3, k int) [][]kdtree.Neighbor {
	start := time.Now()
	out := make([][]kdtree.Neighbor, len(qs))
	par.Sharded(len(qs), s.parallelism,
		func(shard *twostage.Stats, i int) {
			out[i] = s.kNearest(qs[i], k, shard)
		},
		func(shard *twostage.Stats) { s.stats.Merge(*shard) })
	s.record(start)
	return out
}

// RadiusBatch implements Searcher; see NearestBatch for the approximate
// chunking semantics.
func (s *TwoStageSearcher) RadiusBatch(qs []geom.Vec3, r float64) [][]kdtree.Neighbor {
	start := time.Now()
	out := make([][]kdtree.Neighbor, len(qs))
	if s.approx != nil {
		s.approxChunked(len(qs), func(sess *twostage.ApproxSession, shard *twostage.Stats, i int) {
			out[i] = sess.Radius(qs[i], r, shard)
		})
	} else {
		par.Sharded(len(qs), s.parallelism,
			func(shard *twostage.Stats, i int) {
				out[i] = s.tree.Radius(qs[i], r, shard)
			},
			func(shard *twostage.Stats) { s.stats.Merge(*shard) })
	}
	s.record(start)
	return out
}

// approxChunked runs one approximate query kernel over fixed-size chunks
// of the batch. Every chunk starts from empty leader state — each worker
// keeps one session and Resets it between chunks instead of allocating
// O(leaves) of fresh buffers per chunk — so leader state never crosses
// chunk (or worker) boundaries and results are independent of which
// worker executes which chunk. Each worker also owns a stats shard for
// the chunks it happens to execute.
func (s *TwoStageSearcher) approxChunked(n int, run func(sess *twostage.ApproxSession, shard *twostage.Stats, i int)) {
	workers := s.parallelism
	shards := make([]twostage.Stats, workers)
	for len(s.workerSessions) < workers {
		s.workerSessions = append(s.workerSessions, nil)
	}
	par.ForChunks(n, workers, ApproxBatchChunk, func(w, lo, hi int) {
		sess := s.workerSessions[w]
		if sess == nil {
			sess = s.tree.NewApproxSession(*s.approx)
			s.workerSessions[w] = sess
		} else {
			sess.Reset()
		}
		for i := lo; i < hi; i++ {
			run(sess, &shards[w], i)
		}
	})
	for w := range shards {
		s.stats.Merge(shards[w])
	}
}
