// Package search defines the neighbor-search abstraction the registration
// pipeline is written against, with interchangeable backends selected by
// name through an open registry (registry.go: RegisterBackend /
// Backends / NewByName):
//
//   - KDSearcher ("canonical"): the canonical KD-tree (the pipeline's
//     default, §3).
//   - TwoStageSearcher ("twostage", "twostage-approx"): the two-stage
//     tree, optionally with the approximate leader/follower algorithm
//     (§4).
//   - BruteSearcher ("bruteforce"): the linear scan — correctness oracle
//     and zero-build-cost choice for tiny clouds.
//   - TraceSearcher ("trace"): a decorator recording every stage batch
//     into a TraceLog for accelerator co-simulation replay.
//   - Error-injection wrappers (errinject.go): the §4.2 study that replaces
//     NN results with the k-th neighbor and radius results with a shell.
//
// # Batched parallel queries
//
// Every Searcher answers queries two ways: one at a time (Nearest,
// KNearest, Radius) or as a batch (NearestBatch, KNearestBatch,
// RadiusBatch). The batch methods execute the queries of one stage on a
// shared worker pool (internal/par), the software counterpart of the
// query-level parallelism the paper's two-stage tree exposes to hardware.
// Batch results are positionally aligned with the queries and — for every
// exact backend — bit-identical to issuing the same queries one at a time,
// regardless of the Parallelism setting: each query is independent, each
// worker records into its own stats shard, and shards are merged after the
// batch. The approximate leader/follower backend processes batches in
// fixed-size query chunks with a fresh per-chunk session (see batch.go),
// so its results are a deterministic function of the batch alone,
// invariant under Parallelism.
//
// A Searcher is NOT safe for concurrent use by multiple goroutines: the
// batch methods parallelize internally, but distinct calls on the same
// instance must be sequential. This keeps the per-instance metrics exact
// without atomics on the query fast path.
//
// Every searcher records per-instance metrics (wall time, query and visit
// counts) so the pipeline can attribute stage time to KD-tree search the
// way Fig. 4b does.
package search

import (
	"math"
	"time"

	"tigris/internal/cloud"
	"tigris/internal/geom"
	"tigris/internal/kdtree"
	"tigris/internal/par"
	"tigris/internal/twostage"
)

// Metrics accumulates instrumentation for one searcher instance. Not safe
// for concurrent use; the batch methods shard per worker and merge here.
type Metrics struct {
	BuildTime time.Duration
	// SearchTime is wall time spent answering queries. Batch methods add
	// the wall time of the whole batch, so with Parallelism > 1 this is
	// less than the sum of per-query times — exactly the Fig. 4-style
	// speedup the batched API exists to expose.
	SearchTime   time.Duration
	Queries      int64
	NodesVisited int64 // points/nodes whose distance was computed
}

// Merge adds other's counters into m.
func (m *Metrics) Merge(other Metrics) {
	m.BuildTime += other.BuildTime
	m.SearchTime += other.SearchTime
	m.Queries += other.Queries
	m.NodesVisited += other.NodesVisited
}

// Searcher answers neighbor queries over a fixed point set.
//
// The *Batch methods answer many independent queries at once on a worker
// pool sized by SetParallelism (default: one worker per CPU). Batch
// results are positionally aligned with the query slice; a NearestBatch
// entry with Index < 0 means the searcher holds no points.
//
// Ownership contract: every per-query slice a KNearestBatch or
// RadiusBatch returns passes to the caller, which may consume it and
// hand it to RecycleBatch for reuse by the shared slab pool — pipeline
// stages do exactly that. Implementations (including backends registered
// through RegisterBackend) must therefore return slices they do not
// retain or alias: memory a backend keeps referencing would be recycled
// under it and overwritten by later pooled queries.
type Searcher interface {
	// Nearest returns the nearest neighbor of q.
	Nearest(q geom.Vec3) (kdtree.Neighbor, bool)
	// KNearest returns the k nearest neighbors of q in ascending order.
	KNearest(q geom.Vec3, k int) []kdtree.Neighbor
	// Radius returns all neighbors within r of q in ascending order.
	Radius(q geom.Vec3, r float64) []kdtree.Neighbor
	// NearestBatch answers Nearest for every query; misses have Index -1.
	NearestBatch(qs []geom.Vec3) []kdtree.Neighbor
	// KNearestBatch answers KNearest for every query.
	KNearestBatch(qs []geom.Vec3, k int) [][]kdtree.Neighbor
	// RadiusBatch answers Radius for every query.
	RadiusBatch(qs []geom.Vec3, r float64) [][]kdtree.Neighbor
	// SetParallelism sets the batch worker count (<= 0 selects NumCPU).
	SetParallelism(n int)
	// Parallelism reports the resolved batch worker count.
	Parallelism() int
	// Slab exposes the indexed SoA point store (read-only by
	// convention). Consumers dequantize with Slab().At(i); results of
	// every query were computed against exactly those values.
	Slab() *cloud.Slab
	// Metrics returns the accumulated instrumentation.
	Metrics() *Metrics
}

// KDSearcher wraps the canonical KD-tree.
type KDSearcher struct {
	tree        *kdtree.Tree
	stats       kdtree.Stats
	metrics     Metrics
	parallelism int
}

// NewKDSearcher builds a canonical KD-tree over pts (quantized into a
// fresh SoA slab), recording build time. Batch parallelism defaults to
// runtime.NumCPU().
func NewKDSearcher(pts []geom.Vec3) *KDSearcher {
	return NewKDSearcherSlab(cloud.SlabFromPoints(pts))
}

// NewKDSearcherSlab builds a canonical KD-tree zero-copy over an
// existing SoA slab.
func NewKDSearcherSlab(slab *cloud.Slab) *KDSearcher {
	s := &KDSearcher{parallelism: par.Workers(0)}
	start := time.Now()
	s.tree = kdtree.BuildSlab(slab)
	s.metrics.BuildTime = time.Since(start)
	return s
}

// SetParallelism implements Searcher.
func (s *KDSearcher) SetParallelism(n int) { s.parallelism = par.Workers(n) }

// Parallelism implements Searcher.
func (s *KDSearcher) Parallelism() int { return s.parallelism }

// Nearest implements Searcher.
func (s *KDSearcher) Nearest(q geom.Vec3) (kdtree.Neighbor, bool) {
	start := time.Now()
	nb, ok := s.tree.Nearest(q, &s.stats)
	s.record(start)
	return nb, ok
}

// KNearest implements Searcher.
func (s *KDSearcher) KNearest(q geom.Vec3, k int) []kdtree.Neighbor {
	start := time.Now()
	res := s.tree.KNearest(q, k, &s.stats)
	s.record(start)
	return res
}

// Radius implements Searcher.
func (s *KDSearcher) Radius(q geom.Vec3, r float64) []kdtree.Neighbor {
	start := time.Now()
	res := s.tree.Radius(q, r, &s.stats)
	s.record(start)
	return res
}

// Slab implements Searcher.
func (s *KDSearcher) Slab() *cloud.Slab { return s.tree.Slab() }

// Metrics implements Searcher.
func (s *KDSearcher) Metrics() *Metrics {
	s.metrics.Queries = s.stats.Queries
	s.metrics.NodesVisited = s.stats.NodesVisited
	return &s.metrics
}

func (s *KDSearcher) record(start time.Time) {
	s.metrics.SearchTime += time.Since(start)
}

// TwoStageSearcher wraps the two-stage tree, optionally with the
// approximate leader/follower session.
type TwoStageSearcher struct {
	tree    *twostage.Tree
	session *twostage.ApproxSession // nil when approximation is disabled
	approx  *twostage.ApproxOptions // nil when approximation is disabled
	// workerSessions caches one approximate session per batch worker,
	// Reset between chunks (see batch.go); grown lazily so repeated
	// batch calls reuse the O(leaves) leader buffers.
	workerSessions []*twostage.ApproxSession
	stats          twostage.Stats
	metrics        Metrics
	parallelism    int
}

// TwoStageConfig configures a TwoStageSearcher.
type TwoStageConfig struct {
	// TopHeight is the top-tree height (paper default 10 for ~130k-point
	// frames; <0 selects a height that yields ~128-point leaf sets).
	TopHeight int
	// Approx enables the leader/follower algorithm with these options.
	Approx *twostage.ApproxOptions
	// Parallelism is the batch worker count (<= 0 selects NumCPU).
	Parallelism int
}

// NewTwoStageSearcher builds a two-stage tree over pts (quantized into a
// fresh SoA slab).
func NewTwoStageSearcher(pts []geom.Vec3, cfg TwoStageConfig) *TwoStageSearcher {
	return NewTwoStageSearcherSlab(cloud.SlabFromPoints(pts), cfg)
}

// NewTwoStageSearcherSlab builds a two-stage tree zero-copy over an
// existing SoA slab.
func NewTwoStageSearcherSlab(slab *cloud.Slab, cfg TwoStageConfig) *TwoStageSearcher {
	s := &TwoStageSearcher{parallelism: par.Workers(cfg.Parallelism)}
	start := time.Now()
	if cfg.TopHeight < 0 {
		s.tree = twostage.BuildWithLeafSizeSlab(slab, 128)
	} else {
		s.tree = twostage.BuildSlab(slab, cfg.TopHeight)
	}
	s.metrics.BuildTime = time.Since(start)
	if cfg.Approx != nil {
		opts := *cfg.Approx
		s.approx = &opts
		s.session = s.tree.NewApproxSession(opts)
	}
	return s
}

// SetParallelism implements Searcher.
func (s *TwoStageSearcher) SetParallelism(n int) { s.parallelism = par.Workers(n) }

// Parallelism implements Searcher.
func (s *TwoStageSearcher) Parallelism() int { return s.parallelism }

// Tree exposes the underlying two-stage structure (used by the accelerator
// simulator, which replays the same searches cycle by cycle).
func (s *TwoStageSearcher) Tree() *twostage.Tree { return s.tree }

// Nearest implements Searcher.
func (s *TwoStageSearcher) Nearest(q geom.Vec3) (kdtree.Neighbor, bool) {
	start := time.Now()
	var nb kdtree.Neighbor
	var ok bool
	if s.session != nil {
		nb, ok = s.session.Nearest(q, &s.stats)
	} else {
		nb, ok = s.tree.Nearest(q, &s.stats)
	}
	s.record(start)
	return nb, ok
}

// KNearest implements Searcher. The two-stage structure serves k-NN
// exactly (no leader/follower path: the pipeline stages that use k-NN are
// the sparse ones the paper excludes from approximation, §4.2).
func (s *TwoStageSearcher) KNearest(q geom.Vec3, k int) []kdtree.Neighbor {
	start := time.Now()
	// Exact k-NN via radius-free exhaustive merge: reuse Nearest's
	// traversal by falling back to a canonical scan of candidate leaves is
	// complex; the two-stage tree answers k-NN by brute-forcing the whole
	// set only when the top-tree is absent. For simplicity and exactness we
	// run a bounded search: collect via expanding radius.
	res := s.kNearest(q, k, &s.stats)
	s.record(start)
	return res
}

// kNearest answers k-NN exactly on the two-stage tree by radius doubling:
// start from the NN distance and expand until k neighbors are inside.
// stats is a parameter (not s.stats) so batch workers can shard it. The
// result lives in a pooled slab (the expanding radius passes reuse it),
// so fully-consumed batches may hand results back via RecycleBatch.
func (s *TwoStageSearcher) kNearest(q geom.Vec3, k int, stats *twostage.Stats) []kdtree.Neighbor {
	if k <= 0 || s.tree.Len() == 0 {
		return nil
	}
	nb, _ := s.tree.Nearest(q, stats)
	r := 2 * (1e-6 + math.Sqrt(nb.Dist2))
	return knnPooled(func(buf []kdtree.Neighbor) []kdtree.Neighbor {
		var res []kdtree.Neighbor
		for i := 0; i < 64; i++ {
			res = s.tree.RadiusInto(q, r, buf[:0], stats)
			buf = res // keep any regrown capacity for the next pass
			if len(res) >= k || len(res) == s.tree.Len() {
				break
			}
			r *= 2
		}
		if len(res) > k {
			res = res[:k]
		}
		return res
	})
}

// Radius implements Searcher.
func (s *TwoStageSearcher) Radius(q geom.Vec3, r float64) []kdtree.Neighbor {
	start := time.Now()
	var res []kdtree.Neighbor
	if s.session != nil {
		res = s.session.Radius(q, r, &s.stats)
	} else {
		res = s.tree.Radius(q, r, &s.stats)
	}
	s.record(start)
	return res
}

// Slab implements Searcher.
func (s *TwoStageSearcher) Slab() *cloud.Slab { return s.tree.Slab() }

// Metrics implements Searcher.
func (s *TwoStageSearcher) Metrics() *Metrics {
	s.metrics.Queries = s.stats.Queries
	s.metrics.NodesVisited = s.stats.TotalVisited()
	return &s.metrics
}

// Stats exposes the two-stage counters (leader hits etc.).
func (s *TwoStageSearcher) Stats() *twostage.Stats { return &s.stats }

func (s *TwoStageSearcher) record(start time.Time) {
	s.metrics.SearchTime += time.Since(start)
}
