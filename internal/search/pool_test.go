package search

import (
	"math/rand"
	"reflect"
	"testing"

	"tigris/internal/geom"
	"tigris/internal/kdtree"
)

// TestRadiusBatchRecycle drives repeated batches through the slab pool
// and checks every round's results against fresh sequential queries —
// recycled slabs must never leak stale contents into later batches.
func TestRadiusBatchRecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := make([]geom.Vec3, 3000)
	for i := range pts {
		pts[i] = geom.V3(rng.Float64()*20, rng.Float64()*20, rng.Float64()*2)
	}
	qs := make([]geom.Vec3, 500)
	for i := range qs {
		qs[i] = geom.V3(rng.Float64()*20, rng.Float64()*20, rng.Float64()*2)
	}
	s := NewKDSearcher(pts)
	oracle := NewKDSearcher(pts)
	for round := 0; round < 3; round++ {
		res := s.RadiusBatch(qs, 0.8+0.3*float64(round))
		for i, q := range qs {
			want := oracle.Radius(q, 0.8+0.3*float64(round))
			if !reflect.DeepEqual(res[i], want) {
				t.Fatalf("round %d query %d: pooled batch diverged", round, i)
			}
		}
		RecycleBatch(res)
		for i := range res {
			if res[i] != nil {
				t.Fatal("RecycleBatch must clear entries")
			}
		}
	}
}

// TestRecycleBatchToleratesForeignSlabs verifies slabs that did not come
// from the pool (and nil entries) are accepted.
func TestRecycleBatchToleratesForeignSlabs(t *testing.T) {
	RecycleBatch([][]kdtree.Neighbor{nil, make([]kdtree.Neighbor, 3), {}})
}
