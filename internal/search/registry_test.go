package search

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"tigris/internal/geom"
	"tigris/internal/twostage"
)

// TestBackendsListsBuiltins pins the registered name set (sorted) so new
// backends show up deliberately.
func TestBackendsListsBuiltins(t *testing.T) {
	got := Backends()
	for _, want := range []string{
		BackendBruteForce, BackendCanonical, BackendTrace,
		BackendTwoStage, BackendTwoStageApprox,
	} {
		found := false
		for _, name := range got {
			found = found || name == want
		}
		if !found {
			t.Errorf("Backends() = %v, missing %q", got, want)
		}
	}
	if !sortedStrings(got) {
		t.Errorf("Backends() not sorted: %v", got)
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return false
		}
	}
	return true
}

// TestRegisterBackendErrors covers duplicate and empty names.
func TestRegisterBackendErrors(t *testing.T) {
	dup := NewSlabBackend(BackendCanonical, newCanonicalBackend)
	if err := RegisterBackend(dup); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("duplicate registration error = %v", err)
	}
	if err := RegisterBackend(NewSlabBackend("", newCanonicalBackend)); err == nil {
		t.Fatal("empty-name registration must fail")
	}
}

// TestRegisterCustomBackend proves the API is open: a backend registered
// at runtime is immediately constructible by name.
func TestRegisterCustomBackend(t *testing.T) {
	const name = "test-custom-linear"
	if err := RegisterBackend(NewBackend(name, func(pts []geom.Vec3, opts Options) (Searcher, error) {
		if err := opts.checkKeys(OptParallelism); err != nil {
			return nil, err
		}
		return NewBruteSearcher(pts), nil
	})); err != nil {
		t.Fatal(err)
	}
	pts := randPoints(rand.New(rand.NewSource(3)), 50)
	s, err := NewByName(name, pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Nearest(pts[0]); !ok {
		t.Fatal("custom backend returned no neighbor")
	}
}

// TestNewByNameUnknown checks the error lists the registered set.
func TestNewByNameUnknown(t *testing.T) {
	_, err := NewByName("no-such-structure", nil, nil)
	if err == nil {
		t.Fatal("unknown backend must fail")
	}
	if !strings.Contains(err.Error(), BackendCanonical) || !strings.Contains(err.Error(), "no-such-structure") {
		t.Fatalf("error should name the unknown backend and the registered set, got: %v", err)
	}
}

// TestBackendOptionErrors: unknown keys and wrong types fail
// construction instead of silently selecting defaults.
func TestBackendOptionErrors(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want string
	}{
		{BackendCanonical, Options{"top_height": 5}, "unknown option"},
		{BackendCanonical, Options{OptParallelism: "four"}, "want an integer"},
		{BackendTwoStage, Options{OptTopHeight: 2.5}, "want an integer"},
		{BackendTwoStageApprox, Options{OptNNThreshold: "big"}, "want a number"},
		{BackendTrace, Options{}, "requires a *search.TraceLog"},
		{BackendTrace, Options{OptTraceSink: &TraceLog{}, OptTraceInner: BackendTrace}, "cannot wrap itself"},
		{BackendTrace, Options{OptTraceSink: &TraceLog{}, OptTraceInner: "nope"}, "unknown backend"},
	}
	for _, tc := range cases {
		_, err := NewByName(tc.name, nil, tc.opts)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s with %v: error = %v, want substring %q", tc.name, tc.opts, err, tc.want)
		}
	}

	// Several typos surface in one round trip, sorted.
	_, err := NewByName(BackendCanonical, nil, Options{"tophight": 8, "nn_treshold": 1.0})
	if err == nil || !strings.Contains(err.Error(), "nn_treshold, tophight") {
		t.Errorf("multi-typo error should list every unknown key, got: %v", err)
	}
}

// TestOptionsRoundTrip builds every built-in through the registry with
// JSON-shaped options (numbers as float64, as encoding/json delivers
// them) and checks the knobs took effect and the results match direct
// construction.
func TestOptionsRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	pts := randPoints(r, 500)
	qs := randPoints(r, 40)

	direct := map[string]Searcher{
		BackendCanonical:  NewKDSearcher(pts),
		BackendTwoStage:   NewTwoStageSearcher(pts, TwoStageConfig{TopHeight: 4}),
		BackendBruteForce: NewBruteSearcher(pts),
		BackendTwoStageApprox: NewTwoStageSearcher(pts, TwoStageConfig{
			TopHeight: 4,
			Approx:    &twostage.ApproxOptions{Threshold: 1.0, RadiusThresholdFrac: 0.3},
		}),
	}
	jsonOpts := map[string]Options{
		BackendCanonical:  {OptParallelism: float64(2)},
		BackendTwoStage:   {OptParallelism: float64(2), OptTopHeight: float64(4)},
		BackendBruteForce: {OptParallelism: float64(2)},
		BackendTwoStageApprox: {
			OptParallelism: float64(2), OptTopHeight: float64(4),
			OptNNThreshold: 1.0, OptRadiusThresholdFrac: 0.3,
		},
	}
	for name, opts := range jsonOpts {
		s, err := NewByName(name, pts, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Parallelism() != 2 {
			t.Errorf("%s: parallelism option not applied, got %d", name, s.Parallelism())
		}
		want := direct[name]
		for i, q := range qs {
			a, _ := s.Nearest(q)
			b, _ := want.Nearest(q)
			if a != b {
				t.Fatalf("%s query %d: registry-built result %v != direct %v", name, i, a, b)
			}
		}
		// Radius results too (exercises the approximate radius path).
		ra := s.RadiusBatch(qs, 2.0)
		rb := want.RadiusBatch(qs, 2.0)
		for i := range qs {
			if !reflect.DeepEqual(ra[i], rb[i]) {
				t.Fatalf("%s query %d: radius mismatch", name, i)
			}
		}
	}
}
