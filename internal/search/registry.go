package search

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"tigris/internal/cloud"
	"tigris/internal/geom"
)

// This file implements the open backend registry: search structures are
// selected by name through a factory interface instead of a closed enum,
// so new structures (and decorators like the trace backend) plug into the
// registration pipeline, the HTTP service, the DSE harness, and the
// accelerator co-simulation without touching a switch statement. The
// paper's whole thesis is that *which* neighbor-search structure serves
// the pipeline's millions of queries governs registration speed; an open
// registry is how the repo keeps growing that design space.

// Registered backend names. These are the stable selection strings used
// by -backend flags, the tigris-serve session JSON, and
// registration.SearcherConfig.Backend.
const (
	// BackendCanonical is the classic KD-tree (the §3 baseline).
	BackendCanonical = "canonical"
	// BackendTwoStage is the two-stage tree with exact search (§4.1).
	BackendTwoStage = "twostage"
	// BackendTwoStageApprox is the two-stage tree with the approximate
	// leader/follower algorithm (§4.3).
	BackendTwoStageApprox = "twostage-approx"
	// BackendBruteForce is the linear scan: the correctness oracle, and
	// the fastest choice for tiny clouds where tree construction
	// dominates.
	BackendBruteForce = "bruteforce"
	// BackendTrace decorates another backend and records every batch into
	// a TraceLog for accelerator co-simulation replay.
	BackendTrace = "trace"
)

// Option keys understood by the built-in backends. Backends reject
// unknown keys, so typos surface as construction errors instead of
// silently selecting defaults.
const (
	// OptParallelism (int) is the batch worker count; accepted by every
	// built-in backend. 0 selects NumCPU, 1 forces the sequential path.
	OptParallelism = "parallelism"
	// OptTopHeight (int) is the two-stage top-tree height; < 0 sizes leaf
	// sets to ~128 points.
	OptTopHeight = "top_height"
	// OptNNThreshold (float) is the approximate-search NN discriminator
	// in meters (0 selects twostage.DefaultNNThreshold).
	OptNNThreshold = "nn_threshold"
	// OptRadiusThresholdFrac (float) is the approximate-search radius
	// discriminator as a fraction of the radius (0 selects
	// twostage.DefaultRadiusThresholdFrac).
	OptRadiusThresholdFrac = "radius_threshold_frac"
	// OptTraceInner (string) names the backend the trace decorator wraps
	// (default canonical). Remaining options pass through to it.
	OptTraceInner = "inner"
	// OptTraceSink (*TraceLog) is the log the trace backend records into.
	OptTraceSink = "sink"
	// OptTraceMaxBatches (int) caps how many batches of each query kind
	// the trace sink retains (rotation keeps the newest; 0 = unbounded).
	// This bounds a long session's capture memory.
	OptTraceMaxBatches = "max_batches"
)

// Options is the generic backend option bag. Values travel untyped so
// options can come from JSON (numbers decode as float64 and are coerced),
// CLI flags, or Go code (which may carry live objects like the trace
// sink). The typed accessors perform the coercions and report clear
// errors.
type Options map[string]any

// Clone returns a shallow copy (nil stays nil).
func (o Options) Clone() Options {
	if o == nil {
		return nil
	}
	out := make(Options, len(o))
	for k, v := range o {
		out[k] = v
	}
	return out
}

// Int reads an integer option, accepting the numeric types JSON and Go
// callers produce. Absent (or nil) keys yield def.
func (o Options) Int(key string, def int) (int, error) {
	v, ok := o[key]
	if !ok || v == nil {
		return def, nil
	}
	switch n := v.(type) {
	case int:
		return n, nil
	case int32:
		return int(n), nil
	case int64:
		return int(n), nil
	case float64:
		if n != math.Trunc(n) {
			return 0, fmt.Errorf("option %q: want an integer, got %v", key, n)
		}
		return int(n), nil
	}
	return 0, fmt.Errorf("option %q: want an integer, got %T", key, v)
}

// Float reads a float option. Absent (or nil) keys yield def.
func (o Options) Float(key string, def float64) (float64, error) {
	v, ok := o[key]
	if !ok || v == nil {
		return def, nil
	}
	switch n := v.(type) {
	case float64:
		return n, nil
	case float32:
		return float64(n), nil
	case int:
		return float64(n), nil
	case int64:
		return float64(n), nil
	}
	return 0, fmt.Errorf("option %q: want a number, got %T", key, v)
}

// String reads a string option. Absent (or nil) keys yield def.
func (o Options) String(key, def string) (string, error) {
	v, ok := o[key]
	if !ok || v == nil {
		return def, nil
	}
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("option %q: want a string, got %T", key, v)
	}
	return s, nil
}

// checkKeys rejects any key outside the known set, so misspelled options
// fail construction instead of silently falling back to defaults.
func (o Options) checkKeys(known ...string) error {
	var bad []string
	for k := range o {
		found := false
		for _, ok := range known {
			if k == ok {
				found = true
				break
			}
		}
		if !found {
			bad = append(bad, k)
		}
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	noun := "option"
	if len(bad) > 1 {
		noun = "options"
	}
	return fmt.Errorf("unknown %s %s (known: %s)", noun, strings.Join(bad, ", "), strings.Join(known, ", "))
}

// Backend is a named searcher factory: the unit of registration. New
// builds a Searcher over pts; opts carries backend-specific knobs (see
// the Opt* keys) and must be rejected when it contains keys the backend
// does not understand.
type Backend interface {
	// Name returns the registry selection string.
	Name() string
	// New builds a searcher over the (possibly empty) point set.
	New(pts []geom.Vec3, opts Options) (Searcher, error)
}

// SlabBackend is the optional zero-copy capability: a backend that can
// build directly over an SoA float32 slab without materializing an AoS
// point slice. Every built-in backend implements it; NewByNameSlab
// routes through it when available and falls back to New on the
// (dequantized) materialized points otherwise.
type SlabBackend interface {
	Backend
	// NewSlab builds a searcher zero-copy over the (possibly empty) slab.
	NewSlab(s *cloud.Slab, opts Options) (Searcher, error)
}

// backendFunc adapts a plain factory function to Backend.
type backendFunc struct {
	name string
	fn   func(pts []geom.Vec3, opts Options) (Searcher, error)
}

func (b backendFunc) Name() string { return b.name }
func (b backendFunc) New(pts []geom.Vec3, opts Options) (Searcher, error) {
	return b.fn(pts, opts)
}

// NewBackend wraps a factory function as a registrable Backend.
func NewBackend(name string, fn func(pts []geom.Vec3, opts Options) (Searcher, error)) Backend {
	return backendFunc{name: name, fn: fn}
}

// slabBackendFunc adapts a slab-native factory to SlabBackend; the AoS
// entry point quantizes into a fresh slab first, so both paths construct
// identical searchers.
type slabBackendFunc struct {
	name string
	fn   func(s *cloud.Slab, opts Options) (Searcher, error)
}

func (b slabBackendFunc) Name() string { return b.name }
func (b slabBackendFunc) New(pts []geom.Vec3, opts Options) (Searcher, error) {
	return b.fn(cloud.SlabFromPoints(pts), opts)
}
func (b slabBackendFunc) NewSlab(s *cloud.Slab, opts Options) (Searcher, error) {
	return b.fn(s, opts)
}

// NewSlabBackend wraps a slab-native factory function as a registrable
// SlabBackend.
func NewSlabBackend(name string, fn func(s *cloud.Slab, opts Options) (Searcher, error)) SlabBackend {
	return slabBackendFunc{name: name, fn: fn}
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Backend{}
)

// RegisterBackend adds a backend to the registry. Names are unique;
// registering a duplicate (or empty) name is an error so extensions
// cannot silently shadow the built-ins.
func RegisterBackend(b Backend) error {
	name := b.Name()
	if name == "" {
		return fmt.Errorf("search: cannot register a backend with an empty name")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("search: backend %q already registered", name)
	}
	registry[name] = b
	return nil
}

// mustRegister registers the built-ins at init time; a failure there is a
// programming error.
func mustRegister(b Backend) {
	if err := RegisterBackend(b); err != nil {
		panic(err)
	}
}

// Backends returns the registered backend names, sorted.
func Backends() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// LookupBackend returns the named backend factory.
func LookupBackend(name string) (Backend, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	b, ok := registry[name]
	return b, ok
}

// NewByName builds a searcher through the registry. Unknown names report
// the registered set so callers (CLI flags, HTTP handlers) can surface an
// actionable error.
func NewByName(name string, pts []geom.Vec3, opts Options) (Searcher, error) {
	b, ok := LookupBackend(name)
	if !ok {
		return nil, fmt.Errorf("search: unknown backend %q (registered: %s)",
			name, strings.Join(Backends(), ", "))
	}
	s, err := b.New(pts, opts)
	if err != nil {
		return nil, fmt.Errorf("search: backend %q: %w", name, err)
	}
	return s, nil
}

// NewByNameSlab is NewByName building zero-copy over an SoA slab — the
// pipeline's hot construction path (one quantization on frame ingest,
// no further copies). Backends without the SlabBackend capability get
// the materialized dequantized points; since those are float32-exact,
// a capability-less backend that re-quantizes indexes identical values.
func NewByNameSlab(name string, slab *cloud.Slab, opts Options) (Searcher, error) {
	b, ok := LookupBackend(name)
	if !ok {
		return nil, fmt.Errorf("search: unknown backend %q (registered: %s)",
			name, strings.Join(Backends(), ", "))
	}
	var s Searcher
	var err error
	if sb, slabCap := b.(SlabBackend); slabCap {
		s, err = sb.NewSlab(slab, opts)
	} else {
		s, err = b.New(slab.Points(), opts)
	}
	if err != nil {
		return nil, fmt.Errorf("search: backend %q: %w", name, err)
	}
	return s, nil
}
