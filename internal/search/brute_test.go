package search

import (
	"math/rand"
	"reflect"
	"testing"

	"tigris/internal/kdtree"
)

// TestBruteSearcherMatchesKD checks the linear-scan backend against the
// canonical tree on every query kind, one-at-a-time and batched, and
// that its metrics count a full scan per query.
func TestBruteSearcherMatchesKD(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	pts := randPoints(r, 300)
	qs := randPoints(r, 50)
	bs := NewBruteSearcher(pts)
	kd := NewKDSearcher(pts)

	for i, q := range qs {
		a, aok := bs.Nearest(q)
		b, bok := kd.Nearest(q)
		if aok != bok || a != b {
			t.Fatalf("query %d: Nearest %v,%v != %v,%v", i, a, aok, b, bok)
		}
		ra := bs.Radius(q, 3)
		rb := kd.Radius(q, 3)
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("query %d: Radius mismatch (%d vs %d results)", i, len(ra), len(rb))
		}
		ka := bs.KNearest(q, 7)
		kb := kd.KNearest(q, 7)
		if !reflect.DeepEqual(ka, kb) {
			t.Fatalf("query %d: KNearest mismatch", i)
		}
	}

	if got := bs.NearestBatch(qs); !reflect.DeepEqual(got, kd.NearestBatch(qs)) {
		t.Fatal("NearestBatch mismatch")
	}
	ra := bs.RadiusBatch(qs, 3)
	rb := kd.RadiusBatch(qs, 3)
	ka := bs.KNearestBatch(qs, 7)
	kb := kd.KNearestBatch(qs, 7)
	for i := range qs {
		if !reflect.DeepEqual(ra[i], rb[i]) {
			t.Fatalf("RadiusBatch[%d] mismatch", i)
		}
		if !reflect.DeepEqual(ka[i], kb[i]) {
			t.Fatalf("KNearestBatch[%d] mismatch", i)
		}
	}

	m := bs.Metrics()
	wantQueries := int64(3*len(qs) + 3*len(qs)) // sequential + batched rounds
	if m.Queries != wantQueries {
		t.Errorf("Queries = %d, want %d", m.Queries, wantQueries)
	}
	if m.NodesVisited != wantQueries*int64(len(pts)) {
		t.Errorf("NodesVisited = %d, want %d (full scan per query)", m.NodesVisited, wantQueries*int64(len(pts)))
	}
}

// TestBruteSearcherEmpty covers the no-points edge.
func TestBruteSearcherEmpty(t *testing.T) {
	bs := NewBruteSearcher(nil)
	if _, ok := bs.Nearest(randPoints(rand.New(rand.NewSource(1)), 1)[0]); ok {
		t.Fatal("Nearest on empty set must miss")
	}
	for _, nb := range bs.NearestBatch(randPoints(rand.New(rand.NewSource(2)), 4)) {
		if nb.Index != -1 {
			t.Fatalf("empty-set NearestBatch entry = %+v", nb)
		}
	}
	if res := bs.KNearest(randPoints(rand.New(rand.NewSource(3)), 1)[0], 3); len(res) != 0 {
		t.Fatalf("empty-set KNearest returned %d results", len(res))
	}
}

// TestKNearestBatchRecycle drives repeated k-NN batches through the slab
// pool (the KNearestInto path) and checks each round against fresh
// sequential queries.
func TestKNearestBatchRecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pts := randPoints(rng, 2000)
	qs := randPoints(rng, 300)
	for _, tc := range []struct {
		name   string
		s      Searcher
		oracle Searcher
	}{
		{"canonical", NewKDSearcher(pts), NewKDSearcher(pts)},
		{"twostage", NewTwoStageSearcher(pts, TwoStageConfig{TopHeight: 4}), NewTwoStageSearcher(pts, TwoStageConfig{TopHeight: 4})},
		{"bruteforce", NewBruteSearcher(pts), NewBruteSearcher(pts)},
	} {
		for round := 0; round < 3; round++ {
			k := 4 + 3*round
			res := tc.s.KNearestBatch(qs, k)
			for i, q := range qs {
				want := tc.oracle.KNearest(q, k)
				if !reflect.DeepEqual(res[i], want) {
					t.Fatalf("%s round %d query %d: pooled k-NN batch diverged", tc.name, round, i)
				}
			}
			RecycleBatch(res)
			for i := range res {
				if res[i] != nil {
					t.Fatalf("%s: RecycleBatch must clear entries", tc.name)
				}
			}
		}
	}
}

// TestKthNNInjectionRecycles ensures the error-injection consumer of
// KNearestBatch still degrades correctly now that it recycles the slabs.
func TestKthNNInjectionRecycles(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := randPoints(rng, 400)
	qs := randPoints(rng, 60)
	inj := &KthNNSearcher{Inner: NewKDSearcher(pts), K: 3}
	oracle := NewKDSearcher(pts)
	for round := 0; round < 2; round++ {
		got := inj.NearestBatch(qs)
		for i, q := range qs {
			knn := oracle.KNearest(q, 3)
			if want := knn[len(knn)-1]; got[i] != want {
				t.Fatalf("round %d query %d: injected NN %v, want %v", round, i, got[i], want)
			}
		}
	}
}

// TestKNearestIntoSharedSlab exercises the regrow path: a tiny recycled
// buffer must grow transparently and still return exact results.
func TestKNearestIntoSharedSlab(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	pts := randPoints(rng, 500)
	tree := kdtree.Build(pts)
	buf := make([]kdtree.Neighbor, 0, 2)
	for i := 0; i < 20; i++ {
		q := randPoints(rng, 1)[0]
		got := tree.KNearestInto(q, 9, buf, nil)
		want := tree.KNearest(q, 9, nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: KNearestInto diverged from KNearest", i)
		}
		buf = got // reuse the (possibly regrown) slab
	}
}
