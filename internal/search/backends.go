package search

import (
	"fmt"

	"tigris/internal/cloud"
	"tigris/internal/twostage"
)

// The built-in backends self-register here, in one place, so the full
// name → factory mapping is readable at a glance. Each factory validates
// its option bag (unknown keys are errors) and mirrors the construction
// paths the pipeline used before the registry existed, bit for bit.

func init() {
	mustRegister(NewSlabBackend(BackendCanonical, newCanonicalBackend))
	mustRegister(NewSlabBackend(BackendTwoStage, newTwoStageBackend))
	mustRegister(NewSlabBackend(BackendTwoStageApprox, newTwoStageApproxBackend))
	mustRegister(NewSlabBackend(BackendBruteForce, newBruteForceBackend))
	mustRegister(NewSlabBackend(BackendTrace, newTraceBackend))
}

func newCanonicalBackend(slab *cloud.Slab, opts Options) (Searcher, error) {
	if err := opts.checkKeys(OptParallelism); err != nil {
		return nil, err
	}
	p, err := opts.Int(OptParallelism, 0)
	if err != nil {
		return nil, err
	}
	s := NewKDSearcherSlab(slab)
	s.SetParallelism(p)
	return s, nil
}

// twoStageConfigFromOptions is shared by the exact and approximate
// two-stage factories.
func twoStageConfigFromOptions(opts Options) (TwoStageConfig, error) {
	var cfg TwoStageConfig
	var err error
	if cfg.TopHeight, err = opts.Int(OptTopHeight, 0); err != nil {
		return cfg, err
	}
	if cfg.Parallelism, err = opts.Int(OptParallelism, 0); err != nil {
		return cfg, err
	}
	return cfg, nil
}

func newTwoStageBackend(slab *cloud.Slab, opts Options) (Searcher, error) {
	if err := opts.checkKeys(OptParallelism, OptTopHeight); err != nil {
		return nil, err
	}
	cfg, err := twoStageConfigFromOptions(opts)
	if err != nil {
		return nil, err
	}
	return NewTwoStageSearcherSlab(slab, cfg), nil
}

func newTwoStageApproxBackend(slab *cloud.Slab, opts Options) (Searcher, error) {
	if err := opts.checkKeys(OptParallelism, OptTopHeight, OptNNThreshold, OptRadiusThresholdFrac); err != nil {
		return nil, err
	}
	cfg, err := twoStageConfigFromOptions(opts)
	if err != nil {
		return nil, err
	}
	thd, err := opts.Float(OptNNThreshold, 0)
	if err != nil {
		return nil, err
	}
	if thd == 0 {
		thd = twostage.DefaultNNThreshold
	}
	frac, err := opts.Float(OptRadiusThresholdFrac, 0)
	if err != nil {
		return nil, err
	}
	if frac == 0 {
		frac = twostage.DefaultRadiusThresholdFrac
	}
	cfg.Approx = &twostage.ApproxOptions{Threshold: thd, RadiusThresholdFrac: frac}
	return NewTwoStageSearcherSlab(slab, cfg), nil
}

func newBruteForceBackend(slab *cloud.Slab, opts Options) (Searcher, error) {
	if err := opts.checkKeys(OptParallelism); err != nil {
		return nil, err
	}
	p, err := opts.Int(OptParallelism, 0)
	if err != nil {
		return nil, err
	}
	s := NewBruteSearcherSlab(slab)
	s.SetParallelism(p)
	return s, nil
}

// newTraceBackend builds the decorator: the "inner" and "sink" options
// are consumed here, everything else passes through to the wrapped
// backend's factory (which performs its own key validation).
func newTraceBackend(slab *cloud.Slab, opts Options) (Searcher, error) {
	inner, err := opts.String(OptTraceInner, BackendCanonical)
	if err != nil {
		return nil, err
	}
	if inner == BackendTrace {
		return nil, fmt.Errorf("trace backend cannot wrap itself")
	}
	sinkV, present := opts[OptTraceSink]
	sink, ok := sinkV.(*TraceLog)
	if !present || !ok || sink == nil {
		return nil, fmt.Errorf("trace backend requires a *search.TraceLog under option %q", OptTraceSink)
	}
	maxBatches, err := opts.Int(OptTraceMaxBatches, 0)
	if err != nil {
		return nil, err
	}
	if maxBatches < 0 {
		return nil, fmt.Errorf("option %q: want >= 0, got %d", OptTraceMaxBatches, maxBatches)
	}
	// Apply whenever the option is present: an explicit 0 clears a cap a
	// previous capture set on a reused sink.
	if _, present := opts[OptTraceMaxBatches]; present {
		sink.SetMaxBatchesPerKind(maxBatches)
	}
	rest := opts.Clone()
	delete(rest, OptTraceInner)
	delete(rest, OptTraceSink)
	delete(rest, OptTraceMaxBatches)
	is, err := NewByNameSlab(inner, slab, rest)
	if err != nil {
		return nil, err
	}
	return &TraceSearcher{Inner: is, Log: sink}, nil
}
