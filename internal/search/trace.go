package search

import (
	"sync"
	"tigris/internal/cloud"

	"tigris/internal/geom"
	"tigris/internal/kdtree"
)

// The trace backend closes the loop between the software pipeline and the
// accelerator co-simulation: it decorates any other backend and records
// every query batch a stage issues into a TraceLog, so the accelerator
// model (internal/sim) and the CPU/GPU baselines (internal/baseline) can
// replay the *real* pipeline query stream instead of re-walking the
// pipeline to synthesize workloads. Results pass through the inner
// backend untouched, so tracing never perturbs the registration output.

// TraceKind classifies one recorded batch by query type.
type TraceKind int

const (
	// TraceNearest is a nearest-neighbor batch (RPCE-shaped).
	TraceNearest TraceKind = iota
	// TraceKNearest is an exact k-NN batch (sparse stages).
	TraceKNearest
	// TraceRadius is a radius batch (NE/descriptor-shaped).
	TraceRadius
)

// String implements fmt.Stringer.
func (k TraceKind) String() string {
	switch k {
	case TraceKNearest:
		return "KNearest"
	case TraceRadius:
		return "Radius"
	default:
		return "Nearest"
	}
}

// Pipeline stage labels for trace attribution. Each registration stage
// tags the searcher (TagStage) before issuing its batches, so a capture
// can be weighted per stage the way the paper's Fig. 6 breaks search
// time down — not just per query kind.
const (
	StageNormals     = "normal_estimation"
	StageKeypoints   = "keypoint_detection"
	StageDescriptors = "descriptor_calculation"
	StageRPCE        = "rpce"
)

// TraceBatch is one recorded stage batch: the query points (a private
// copy) plus the per-kind parameters. A batch of one records a
// single-query call.
type TraceBatch struct {
	Kind TraceKind
	// Stage is the pipeline stage that issued the batch (one of the
	// Stage* labels; empty when the caller never tagged the searcher).
	Stage string
	// K is the neighbor count of a TraceKNearest batch.
	K int
	// Radius is the search radius of a TraceRadius batch.
	Radius float64
	// Queries are the batch's query points, in issue order.
	Queries []geom.Vec3
}

// StageTagger is implemented by searchers that attribute subsequent
// queries to a pipeline stage. Decorators forward the tag to their inner
// searcher; use TagStage to tag any Searcher without a type assertion.
type StageTagger interface {
	SetStage(stage string)
}

// TagStage labels the pipeline stage about to issue queries through s.
// A no-op for searchers that do not record stages, so every stage can
// tag unconditionally.
func TagStage(s Searcher, stage string) {
	if t, ok := s.(StageTagger); ok {
		t.SetStage(stage)
	}
}

// TraceLog accumulates recorded batches. It is safe for concurrent use:
// a pipelined streaming session records from two frames' searchers at
// once. The zero value is ready to use and retains every batch; long
// sessions should cap retention with SetMaxBatchesPerKind (the "trace"
// backend's max_batches option) so capture memory stays bounded.
type TraceLog struct {
	mu      sync.Mutex
	batches []TraceBatch
	// maxPerKind bounds how many batches of each query kind are retained
	// (0 = unbounded). The cap is per kind so the dense stages (radius,
	// NN) cannot evict the sparse k-NN batches a co-sim replay also needs.
	maxPerKind int
	kindCounts [3]int
	dropped    int64
}

// SetMaxBatchesPerKind caps retention at n batches per query kind,
// rotating out the oldest batch of a kind when a new one arrives full —
// the retained window always holds the most recent batches, which is what
// a steady-state co-sim replay wants. n <= 0 removes the cap. Setting a
// cap below the current retention evicts immediately.
func (l *TraceLog) SetMaxBatchesPerKind(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n < 0 {
		n = 0
	}
	l.maxPerKind = n
	if n > 0 {
		for kind := TraceNearest; kind <= TraceRadius; kind++ {
			for l.kindCounts[kind] > n {
				l.evictOldestLocked(kind)
			}
		}
	}
}

// Dropped reports how many batches rotation has evicted so far.
func (l *TraceLog) Dropped() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// evictOldestLocked removes the oldest retained batch of kind. The scan
// is linear but the slice is bounded by 3×maxPerKind whenever eviction
// runs, so rotation stays O(cap) regardless of session length.
func (l *TraceLog) evictOldestLocked(kind TraceKind) {
	for i, b := range l.batches {
		if b.Kind == kind {
			copy(l.batches[i:], l.batches[i+1:])
			l.batches[len(l.batches)-1] = TraceBatch{}
			l.batches = l.batches[:len(l.batches)-1]
			l.kindCounts[kind]--
			l.dropped++
			return
		}
	}
}

// add records a batch, copying the queries (callers own and may reuse the
// input slice). Empty batches are dropped.
func (l *TraceLog) add(kind TraceKind, stage string, k int, radius float64, qs []geom.Vec3) {
	if len(qs) == 0 {
		return
	}
	cp := make([]geom.Vec3, len(qs))
	copy(cp, qs)
	l.mu.Lock()
	if l.maxPerKind > 0 && l.kindCounts[kind] >= l.maxPerKind {
		l.evictOldestLocked(kind)
	}
	l.batches = append(l.batches, TraceBatch{Kind: kind, Stage: stage, K: k, Radius: radius, Queries: cp})
	l.kindCounts[kind]++
	l.mu.Unlock()
}

// Batches snapshots the recorded batches in issue order. The headers are
// copied; the query slices are shared and must be treated as read-only.
func (l *TraceLog) Batches() []TraceBatch {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]TraceBatch(nil), l.batches...)
}

// Len reports the number of recorded batches.
func (l *TraceLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.batches)
}

// QueryCount sums the queries across all recorded batches.
func (l *TraceLog) QueryCount() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var n int64
	for _, b := range l.batches {
		n += int64(len(b.Queries))
	}
	return n
}

// Reset discards the recorded batches (the log stays usable; the
// retention cap and cumulative drop counter survive).
func (l *TraceLog) Reset() {
	l.mu.Lock()
	l.batches = nil
	l.kindCounts = [3]int{}
	l.mu.Unlock()
}

// TraceSearcher decorates Inner, recording every query into Log before
// delegating. Construct it directly or via the "trace" registry backend
// (options: "inner" backend name, "sink" *TraceLog, rest forwarded).
// The pipeline stages label their traffic through SetStage (see
// TagStage); like the rest of the Searcher surface, the stage tag is not
// synchronized — distinct searcher instances record concurrently, one
// instance must be driven sequentially.
type TraceSearcher struct {
	Inner Searcher
	Log   *TraceLog
	stage string
}

// SetStage implements StageTagger: subsequent batches are attributed to
// the given pipeline stage.
func (s *TraceSearcher) SetStage(stage string) { s.stage = stage }

// Nearest implements Searcher, recording a batch of one.
func (s *TraceSearcher) Nearest(q geom.Vec3) (kdtree.Neighbor, bool) {
	s.Log.add(TraceNearest, s.stage, 0, 0, []geom.Vec3{q})
	return s.Inner.Nearest(q)
}

// KNearest implements Searcher, recording a batch of one.
func (s *TraceSearcher) KNearest(q geom.Vec3, k int) []kdtree.Neighbor {
	s.Log.add(TraceKNearest, s.stage, k, 0, []geom.Vec3{q})
	return s.Inner.KNearest(q, k)
}

// Radius implements Searcher, recording a batch of one.
func (s *TraceSearcher) Radius(q geom.Vec3, r float64) []kdtree.Neighbor {
	s.Log.add(TraceRadius, s.stage, 0, r, []geom.Vec3{q})
	return s.Inner.Radius(q, r)
}

// NearestBatch implements Searcher, recording the whole stage batch.
func (s *TraceSearcher) NearestBatch(qs []geom.Vec3) []kdtree.Neighbor {
	s.Log.add(TraceNearest, s.stage, 0, 0, qs)
	return s.Inner.NearestBatch(qs)
}

// NearestBatchInto records the batch and forwards the in-place fast path
// (see BatchNearestInto), so tracing keeps the hot loop's zero-allocation
// behavior when the inner backend supports it.
func (s *TraceSearcher) NearestBatchInto(qs []geom.Vec3, buf []kdtree.Neighbor) []kdtree.Neighbor {
	s.Log.add(TraceNearest, s.stage, 0, 0, qs)
	return BatchNearestInto(s.Inner, qs, buf)
}

// KNearestBatch implements Searcher, recording the whole stage batch.
func (s *TraceSearcher) KNearestBatch(qs []geom.Vec3, k int) [][]kdtree.Neighbor {
	s.Log.add(TraceKNearest, s.stage, k, 0, qs)
	return s.Inner.KNearestBatch(qs, k)
}

// RadiusBatch implements Searcher, recording the whole stage batch.
func (s *TraceSearcher) RadiusBatch(qs []geom.Vec3, r float64) [][]kdtree.Neighbor {
	s.Log.add(TraceRadius, s.stage, 0, r, qs)
	return s.Inner.RadiusBatch(qs, r)
}

// SetParallelism implements Searcher by delegation.
func (s *TraceSearcher) SetParallelism(n int) { s.Inner.SetParallelism(n) }

// Parallelism implements Searcher by delegation.
func (s *TraceSearcher) Parallelism() int { return s.Inner.Parallelism() }

// Slab implements Searcher.
func (s *TraceSearcher) Slab() *cloud.Slab { return s.Inner.Slab() }

// Metrics implements Searcher.
func (s *TraceSearcher) Metrics() *Metrics { return s.Inner.Metrics() }
