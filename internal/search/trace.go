package search

import (
	"sync"

	"tigris/internal/geom"
	"tigris/internal/kdtree"
)

// The trace backend closes the loop between the software pipeline and the
// accelerator co-simulation: it decorates any other backend and records
// every query batch a stage issues into a TraceLog, so the accelerator
// model (internal/sim) and the CPU/GPU baselines (internal/baseline) can
// replay the *real* pipeline query stream instead of re-walking the
// pipeline to synthesize workloads. Results pass through the inner
// backend untouched, so tracing never perturbs the registration output.

// TraceKind classifies one recorded batch by query type.
type TraceKind int

const (
	// TraceNearest is a nearest-neighbor batch (RPCE-shaped).
	TraceNearest TraceKind = iota
	// TraceKNearest is an exact k-NN batch (sparse stages).
	TraceKNearest
	// TraceRadius is a radius batch (NE/descriptor-shaped).
	TraceRadius
)

// String implements fmt.Stringer.
func (k TraceKind) String() string {
	switch k {
	case TraceKNearest:
		return "KNearest"
	case TraceRadius:
		return "Radius"
	default:
		return "Nearest"
	}
}

// TraceBatch is one recorded stage batch: the query points (a private
// copy) plus the per-kind parameters. A batch of one records a
// single-query call.
type TraceBatch struct {
	Kind TraceKind
	// K is the neighbor count of a TraceKNearest batch.
	K int
	// Radius is the search radius of a TraceRadius batch.
	Radius float64
	// Queries are the batch's query points, in issue order.
	Queries []geom.Vec3
}

// TraceLog accumulates recorded batches. It is safe for concurrent use:
// a pipelined streaming session records from two frames' searchers at
// once. The zero value is ready to use.
type TraceLog struct {
	mu      sync.Mutex
	batches []TraceBatch
}

// add records a batch, copying the queries (callers own and may reuse the
// input slice). Empty batches are dropped.
func (l *TraceLog) add(kind TraceKind, k int, radius float64, qs []geom.Vec3) {
	if len(qs) == 0 {
		return
	}
	cp := make([]geom.Vec3, len(qs))
	copy(cp, qs)
	l.mu.Lock()
	l.batches = append(l.batches, TraceBatch{Kind: kind, K: k, Radius: radius, Queries: cp})
	l.mu.Unlock()
}

// Batches snapshots the recorded batches in issue order. The headers are
// copied; the query slices are shared and must be treated as read-only.
func (l *TraceLog) Batches() []TraceBatch {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]TraceBatch(nil), l.batches...)
}

// Len reports the number of recorded batches.
func (l *TraceLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.batches)
}

// QueryCount sums the queries across all recorded batches.
func (l *TraceLog) QueryCount() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var n int64
	for _, b := range l.batches {
		n += int64(len(b.Queries))
	}
	return n
}

// Reset discards the recorded batches (the log stays usable).
func (l *TraceLog) Reset() {
	l.mu.Lock()
	l.batches = nil
	l.mu.Unlock()
}

// TraceSearcher decorates Inner, recording every query into Log before
// delegating. Construct it directly or via the "trace" registry backend
// (options: "inner" backend name, "sink" *TraceLog, rest forwarded).
type TraceSearcher struct {
	Inner Searcher
	Log   *TraceLog
}

// Nearest implements Searcher, recording a batch of one.
func (s *TraceSearcher) Nearest(q geom.Vec3) (kdtree.Neighbor, bool) {
	s.Log.add(TraceNearest, 0, 0, []geom.Vec3{q})
	return s.Inner.Nearest(q)
}

// KNearest implements Searcher, recording a batch of one.
func (s *TraceSearcher) KNearest(q geom.Vec3, k int) []kdtree.Neighbor {
	s.Log.add(TraceKNearest, k, 0, []geom.Vec3{q})
	return s.Inner.KNearest(q, k)
}

// Radius implements Searcher, recording a batch of one.
func (s *TraceSearcher) Radius(q geom.Vec3, r float64) []kdtree.Neighbor {
	s.Log.add(TraceRadius, 0, r, []geom.Vec3{q})
	return s.Inner.Radius(q, r)
}

// NearestBatch implements Searcher, recording the whole stage batch.
func (s *TraceSearcher) NearestBatch(qs []geom.Vec3) []kdtree.Neighbor {
	s.Log.add(TraceNearest, 0, 0, qs)
	return s.Inner.NearestBatch(qs)
}

// KNearestBatch implements Searcher, recording the whole stage batch.
func (s *TraceSearcher) KNearestBatch(qs []geom.Vec3, k int) [][]kdtree.Neighbor {
	s.Log.add(TraceKNearest, k, 0, qs)
	return s.Inner.KNearestBatch(qs, k)
}

// RadiusBatch implements Searcher, recording the whole stage batch.
func (s *TraceSearcher) RadiusBatch(qs []geom.Vec3, r float64) [][]kdtree.Neighbor {
	s.Log.add(TraceRadius, 0, r, qs)
	return s.Inner.RadiusBatch(qs, r)
}

// SetParallelism implements Searcher by delegation.
func (s *TraceSearcher) SetParallelism(n int) { s.Inner.SetParallelism(n) }

// Parallelism implements Searcher by delegation.
func (s *TraceSearcher) Parallelism() int { return s.Inner.Parallelism() }

// Points implements Searcher.
func (s *TraceSearcher) Points() []geom.Vec3 { return s.Inner.Points() }

// Metrics implements Searcher.
func (s *TraceSearcher) Metrics() *Metrics { return s.Inner.Metrics() }
