package search

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestTraceSearcherTransparent: tracing must never change results, and
// the log must record every batch with the right kind, parameters, and
// query copies.
func TestTraceSearcherTransparent(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	pts := randPoints(r, 400)
	qs := randPoints(r, 30)

	sink := &TraceLog{}
	traced, err := NewByName(BackendTrace, pts, Options{
		OptTraceInner: BackendTwoStage,
		OptTraceSink:  sink,
		OptTopHeight:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	plain := NewTwoStageSearcher(pts, TwoStageConfig{TopHeight: 3})

	if !reflect.DeepEqual(traced.NearestBatch(qs), plain.NearestBatch(qs)) {
		t.Fatal("traced NearestBatch diverged from plain backend")
	}
	ra := traced.RadiusBatch(qs, 1.5)
	rb := plain.RadiusBatch(qs, 1.5)
	for i := range qs {
		if !reflect.DeepEqual(ra[i], rb[i]) {
			t.Fatalf("traced RadiusBatch[%d] diverged", i)
		}
	}
	if got, want := traced.KNearest(qs[0], 5), plain.KNearest(qs[0], 5); !reflect.DeepEqual(got, want) {
		t.Fatal("traced KNearest diverged")
	}

	batches := sink.Batches()
	if len(batches) != 3 {
		t.Fatalf("recorded %d batches, want 3", len(batches))
	}
	if batches[0].Kind != TraceNearest || len(batches[0].Queries) != len(qs) {
		t.Fatalf("batch 0 = %v kind, %d queries", batches[0].Kind, len(batches[0].Queries))
	}
	if batches[1].Kind != TraceRadius || batches[1].Radius != 1.5 {
		t.Fatalf("batch 1 = %v kind, radius %v", batches[1].Kind, batches[1].Radius)
	}
	if batches[2].Kind != TraceKNearest || batches[2].K != 5 || len(batches[2].Queries) != 1 {
		t.Fatalf("batch 2 = %+v", batches[2])
	}
	if sink.QueryCount() != int64(2*len(qs)+1) {
		t.Fatalf("QueryCount = %d, want %d", sink.QueryCount(), 2*len(qs)+1)
	}

	// The log copied the queries: mutating the caller's slice afterwards
	// must not reach the capture.
	orig := batches[0].Queries[0]
	qs[0].X += 100
	if sink.Batches()[0].Queries[0] != orig {
		t.Fatal("trace must copy query slices")
	}

	sink.Reset()
	if sink.Len() != 0 {
		t.Fatal("Reset must clear the log")
	}
}
