package search

import (
	"math/rand"
	"reflect"
	"testing"

	"tigris/internal/geom"
)

// TestTraceSearcherTransparent: tracing must never change results, and
// the log must record every batch with the right kind, parameters, and
// query copies.
func TestTraceSearcherTransparent(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	pts := randPoints(r, 400)
	qs := randPoints(r, 30)

	sink := &TraceLog{}
	traced, err := NewByName(BackendTrace, pts, Options{
		OptTraceInner: BackendTwoStage,
		OptTraceSink:  sink,
		OptTopHeight:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	plain := NewTwoStageSearcher(pts, TwoStageConfig{TopHeight: 3})

	if !reflect.DeepEqual(traced.NearestBatch(qs), plain.NearestBatch(qs)) {
		t.Fatal("traced NearestBatch diverged from plain backend")
	}
	ra := traced.RadiusBatch(qs, 1.5)
	rb := plain.RadiusBatch(qs, 1.5)
	for i := range qs {
		if !reflect.DeepEqual(ra[i], rb[i]) {
			t.Fatalf("traced RadiusBatch[%d] diverged", i)
		}
	}
	if got, want := traced.KNearest(qs[0], 5), plain.KNearest(qs[0], 5); !reflect.DeepEqual(got, want) {
		t.Fatal("traced KNearest diverged")
	}

	batches := sink.Batches()
	if len(batches) != 3 {
		t.Fatalf("recorded %d batches, want 3", len(batches))
	}
	if batches[0].Kind != TraceNearest || len(batches[0].Queries) != len(qs) {
		t.Fatalf("batch 0 = %v kind, %d queries", batches[0].Kind, len(batches[0].Queries))
	}
	if batches[1].Kind != TraceRadius || batches[1].Radius != 1.5 {
		t.Fatalf("batch 1 = %v kind, radius %v", batches[1].Kind, batches[1].Radius)
	}
	if batches[2].Kind != TraceKNearest || batches[2].K != 5 || len(batches[2].Queries) != 1 {
		t.Fatalf("batch 2 = %+v", batches[2])
	}
	if sink.QueryCount() != int64(2*len(qs)+1) {
		t.Fatalf("QueryCount = %d, want %d", sink.QueryCount(), 2*len(qs)+1)
	}

	// The log copied the queries: mutating the caller's slice afterwards
	// must not reach the capture.
	orig := batches[0].Queries[0]
	qs[0].X += 100
	if sink.Batches()[0].Queries[0] != orig {
		t.Fatal("trace must copy query slices")
	}

	sink.Reset()
	if sink.Len() != 0 {
		t.Fatal("Reset must clear the log")
	}
}

// TestTraceLogRotation: the max_batches retention cap must rotate per
// query kind — newest batches kept, oldest of the same kind evicted —
// without touching other kinds, closing the "trace capture grows
// unboundedly" follow-up.
func TestTraceLogRotation(t *testing.T) {
	var log TraceLog
	log.SetMaxBatchesPerKind(2)
	q := func(x float64) []geom.Vec3 { return []geom.Vec3{{X: x}} }

	log.add(TraceNearest, "", 0, 0, q(1))
	log.add(TraceNearest, "", 0, 0, q(2))
	log.add(TraceRadius, "", 0, 0.5, q(10))
	log.add(TraceNearest, "", 0, 0, q(3)) // evicts the x=1 nearest batch

	batches := log.Batches()
	if len(batches) != 3 {
		t.Fatalf("retained %d batches, want 3", len(batches))
	}
	// Order preserved; the oldest nearest batch is gone, the radius batch
	// untouched.
	if batches[0].Queries[0].X != 2 || batches[0].Kind != TraceNearest {
		t.Fatalf("batch 0 = %+v, want the x=2 nearest batch", batches[0])
	}
	if batches[1].Kind != TraceRadius || batches[2].Queries[0].X != 3 {
		t.Fatalf("unexpected retention order: %+v", batches)
	}
	if log.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", log.Dropped())
	}

	// Tightening the cap evicts immediately.
	log.SetMaxBatchesPerKind(1)
	batches = log.Batches()
	if len(batches) != 2 || batches[0].Kind != TraceRadius || batches[1].Queries[0].X != 3 {
		t.Fatalf("after tightening: %+v", batches)
	}
	if log.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", log.Dropped())
	}

	// Reset clears retention state but keeps the cumulative drop count.
	log.Reset()
	log.add(TraceNearest, "", 0, 0, q(4))
	if log.Len() != 1 || log.Dropped() != 2 {
		t.Fatalf("after reset: len %d dropped %d", log.Len(), log.Dropped())
	}
}

// TestTraceBackendMaxBatchesOption: the registry option must reach the
// sink and not leak into the inner backend's option validation.
func TestTraceBackendMaxBatchesOption(t *testing.T) {
	sink := &TraceLog{}
	pts := []geom.Vec3{{X: 1}, {X: 2}, {X: 3}}
	s, err := NewByName(BackendTrace, pts, Options{
		OptTraceSink: sink, OptTraceMaxBatches: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.NearestBatch([]geom.Vec3{{X: float64(i)}})
	}
	if sink.Len() != 2 {
		t.Fatalf("retained %d batches, want 2", sink.Len())
	}
	if sink.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", sink.Dropped())
	}
	if _, err := NewByName(BackendTrace, pts, Options{
		OptTraceSink: sink, OptTraceMaxBatches: -1,
	}); err == nil {
		t.Fatal("negative max_batches must be rejected")
	}
}
