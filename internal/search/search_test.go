package search

import (
	"math"
	"math/rand"
	"testing"

	"tigris/internal/geom"
	"tigris/internal/kdtree"
	"tigris/internal/twostage"
)

// randPoints generates test points pre-snapped to float32 (the slab
// quantization convention), so exact backends match AoS oracles
// bit-for-bit.
func randPoints(r *rand.Rand, n int) []geom.Vec3 {
	pts := make([]geom.Vec3, n)
	for i := range pts {
		pts[i] = geom.Vec3{
			X: r.Float64()*60 - 30,
			Y: r.Float64()*60 - 30,
			Z: r.Float64()*6 - 3,
		}.Quantize32()
	}
	return pts
}

func TestKDSearcherMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pts := randPoints(r, 400)
	s := NewKDSearcher(pts)
	for i := 0; i < 30; i++ {
		q := randPoints(r, 1)[0]
		nb, ok := s.Nearest(q)
		want, _ := kdtree.BruteNearest(pts, q)
		if !ok || math.Abs(nb.Dist2-want.Dist2) > 1e-12 {
			t.Fatalf("KDSearcher NN mismatch")
		}
	}
	if s.Metrics().Queries != 30 {
		t.Errorf("queries = %d", s.Metrics().Queries)
	}
	if s.Metrics().NodesVisited == 0 {
		t.Error("expected node visits recorded")
	}
}

func TestTwoStageSearcherExactMatchesKD(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts := randPoints(r, 600)
	kd := NewKDSearcher(pts)
	ts := NewTwoStageSearcher(pts, TwoStageConfig{TopHeight: 5})
	for i := 0; i < 40; i++ {
		q := randPoints(r, 1)[0]
		a, _ := kd.Nearest(q)
		b, _ := ts.Nearest(q)
		if math.Abs(a.Dist2-b.Dist2) > 1e-12 {
			t.Fatalf("NN mismatch: %v vs %v", a, b)
		}
		ra := kd.Radius(q, 5)
		rb := ts.Radius(q, 5)
		if len(ra) != len(rb) {
			t.Fatalf("radius count mismatch: %d vs %d", len(ra), len(rb))
		}
	}
}

func TestTwoStageKNearestExact(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := randPoints(r, 500)
	ts := NewTwoStageSearcher(pts, TwoStageConfig{TopHeight: 4})
	for i := 0; i < 25; i++ {
		q := randPoints(r, 1)[0]
		k := 1 + r.Intn(12)
		got := ts.KNearest(q, k)
		want := kdtree.BruteKNearest(pts, q, k)
		if len(got) != len(want) {
			t.Fatalf("k-NN count %d, want %d", len(got), len(want))
		}
		for j := range got {
			if math.Abs(got[j].Dist2-want[j].Dist2) > 1e-12 {
				t.Fatalf("k-NN[%d] mismatch", j)
			}
		}
	}
}

func TestTwoStageApproxSessionPersistsLeaders(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	pts := randPoints(r, 3000)
	ts := NewTwoStageSearcher(pts, TwoStageConfig{
		TopHeight: 5,
		Approx:    &twostage.ApproxOptions{Threshold: 1.5},
	})
	// Clustered queries issued one by one (not as a batch) must still get
	// follower hits because the session persists leader state.
	for i := 0; i < 500; i++ {
		base := pts[r.Intn(len(pts))]
		q := base.Add(geom.Vec3{X: r.Float64()*0.4 - 0.2, Y: r.Float64()*0.4 - 0.2})
		ts.Nearest(q)
	}
	if ts.Stats().FollowerHits == 0 {
		t.Error("expected follower hits across separate calls")
	}
}

func TestNegativeTopHeightAutoSizes(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	pts := randPoints(r, 4000)
	ts := NewTwoStageSearcher(pts, TwoStageConfig{TopHeight: -1})
	if got := ts.Tree().MaxLeafSize(); got > 128 {
		t.Errorf("auto-sized leaf = %d, want <= 128", got)
	}
}

func TestKthNNSearcher(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	pts := randPoints(r, 300)
	inner := NewKDSearcher(pts)
	for _, k := range []int{1, 2, 5, 9} {
		s := &KthNNSearcher{Inner: inner, K: k}
		q := randPoints(r, 1)[0]
		nb, ok := s.Nearest(q)
		if !ok {
			t.Fatal("no result")
		}
		want := kdtree.BruteKNearest(pts, q, k)
		if nb.Index != want[k-1].Index {
			t.Fatalf("K=%d: got %d, want %d", k, nb.Index, want[k-1].Index)
		}
	}
	// K larger than the cloud falls back to the farthest available.
	tiny := &KthNNSearcher{Inner: NewKDSearcher(pts[:3]), K: 10}
	nb, ok := tiny.Nearest(geom.Vec3{})
	if !ok {
		t.Fatal("tiny cloud should still answer")
	}
	want := kdtree.BruteKNearest(pts[:3], geom.Vec3{}, 3)
	if nb.Index != want[2].Index {
		t.Errorf("fallback should return farthest available")
	}
}

func TestShellSearcher(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	pts := randPoints(r, 800)
	inner := NewKDSearcher(pts)
	s := &ShellSearcher{Inner: inner, R1: 3, R2: 7}
	q := randPoints(r, 1)[0]
	res := s.Radius(q, 5) // nominal r is ignored by the injection
	if len(res) == 0 {
		t.Fatal("shell returned nothing (statistically implausible)")
	}
	for _, nb := range res {
		d := math.Sqrt(nb.Dist2)
		if d < 3-1e-9 || d > 7+1e-9 {
			t.Fatalf("shell returned point at distance %v", d)
		}
	}
	// Shell results must equal brute-force shell.
	want := 0
	for _, p := range pts {
		d := q.Dist(p)
		if d >= 3 && d <= 7 {
			want++
		}
	}
	if len(res) != want {
		t.Errorf("shell count %d, want %d", len(res), want)
	}
}

func TestInjectionPassThrough(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	pts := randPoints(r, 200)
	inner := NewKDSearcher(pts)
	kth := &KthNNSearcher{Inner: inner, K: 3}
	shell := &ShellSearcher{Inner: inner, R1: 1, R2: 2}
	q := randPoints(r, 1)[0]

	if got, want := kth.Radius(q, 4), inner.Radius(q, 4); len(got) != len(want) {
		t.Error("KthNN should not distort radius search")
	}
	a, _ := shell.Nearest(q)
	b, _ := inner.Nearest(q)
	if a != b {
		t.Error("Shell should not distort NN search")
	}
	if kth.Slab().Len() != 200 || shell.Slab().Len() != 200 {
		t.Error("Slab pass-through broken")
	}
}

func TestMetricsMerge(t *testing.T) {
	a := Metrics{Queries: 1, NodesVisited: 10}
	a.Merge(Metrics{Queries: 2, NodesVisited: 5})
	if a.Queries != 3 || a.NodesVisited != 15 {
		t.Errorf("merged = %+v", a)
	}
}
