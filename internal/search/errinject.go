package search

import (
	"tigris/internal/cloud"
	"tigris/internal/geom"
	"tigris/internal/kdtree"
)

// The error-injection wrappers implement the §4.2 study that quantifies the
// registration pipeline's tolerance to inexact KD-tree search:
//
//   - KthNNSearcher replaces the NN result with the k-th nearest neighbor
//     (Fig. 7a's x-axis).
//   - ShellSearcher replaces radius-r results with the points lying in the
//     spherical shell <r1, r2> with r1 < r < r2 (Fig. 7b's x-axis).
//
// Both delegate every other query kind to the wrapped searcher unchanged.

// KthNNSearcher degrades Nearest to return the K-th nearest neighbor
// (K = 1 is exact).
type KthNNSearcher struct {
	Inner Searcher
	K     int
}

// Nearest implements Searcher with the k-th-neighbor substitution.
func (s *KthNNSearcher) Nearest(q geom.Vec3) (kdtree.Neighbor, bool) {
	k := s.K
	if k < 1 {
		k = 1
	}
	res := s.Inner.KNearest(q, k)
	if len(res) == 0 {
		return kdtree.Neighbor{}, false
	}
	// If the cloud has fewer than k points, fall back to the farthest
	// available, keeping the distortion monotone in K.
	return res[len(res)-1], true
}

// NearestBatch implements Searcher: the whole batch is answered through
// the inner KNearestBatch and degraded per query, so the distortion is
// identical to calling Nearest once per query. The k-NN slabs are fully
// consumed here (only the last value survives, by copy), so they go
// straight back to the slab pool.
func (s *KthNNSearcher) NearestBatch(qs []geom.Vec3) []kdtree.Neighbor {
	k := s.K
	if k < 1 {
		k = 1
	}
	knn := s.Inner.KNearestBatch(qs, k)
	out := make([]kdtree.Neighbor, len(qs))
	for i, res := range knn {
		if len(res) == 0 {
			out[i] = kdtree.Neighbor{Index: -1}
			continue
		}
		out[i] = res[len(res)-1]
	}
	RecycleBatch(knn)
	return out
}

// KNearest implements Searcher (undistorted).
func (s *KthNNSearcher) KNearest(q geom.Vec3, k int) []kdtree.Neighbor {
	return s.Inner.KNearest(q, k)
}

// KNearestBatch implements Searcher (undistorted).
func (s *KthNNSearcher) KNearestBatch(qs []geom.Vec3, k int) [][]kdtree.Neighbor {
	return s.Inner.KNearestBatch(qs, k)
}

// Radius implements Searcher (undistorted).
func (s *KthNNSearcher) Radius(q geom.Vec3, r float64) []kdtree.Neighbor {
	return s.Inner.Radius(q, r)
}

// RadiusBatch implements Searcher (undistorted).
func (s *KthNNSearcher) RadiusBatch(qs []geom.Vec3, r float64) [][]kdtree.Neighbor {
	return s.Inner.RadiusBatch(qs, r)
}

// SetStage forwards stage attribution to the wrapped searcher.
func (s *KthNNSearcher) SetStage(stage string) { TagStage(s.Inner, stage) }

// SetParallelism implements Searcher by delegation.
func (s *KthNNSearcher) SetParallelism(n int) { s.Inner.SetParallelism(n) }

// Parallelism implements Searcher by delegation.
func (s *KthNNSearcher) Parallelism() int { return s.Inner.Parallelism() }

// Slab implements Searcher.
func (s *KthNNSearcher) Slab() *cloud.Slab { return s.Inner.Slab() }

// Metrics implements Searcher.
func (s *KthNNSearcher) Metrics() *Metrics { return s.Inner.Metrics() }

// ShellSearcher degrades Radius(q, r) to return points in the shell
// [R1, R2] instead of the ball [0, r]. The caller chooses R1 < r < R2 as in
// Fig. 7b (e.g. <30 cm, 75 cm> against r = 60 cm).
type ShellSearcher struct {
	Inner  Searcher
	R1, R2 float64
}

// shellFilter keeps the neighbors at squared distance >= r1sq, the
// single definition of the shell's inner bound for both query paths.
// It filters in place: the inner query's slab is the returned slab, so
// pooled batch buffers survive the injection wrapper and RecycleBatch
// downstream keeps working at full capacity.
func shellFilter(outer []kdtree.Neighbor, r1sq float64) []kdtree.Neighbor {
	res := outer[:0]
	for _, nb := range outer {
		if nb.Dist2 >= r1sq {
			res = append(res, nb)
		}
	}
	return res
}

// Radius implements Searcher with the shell substitution.
func (s *ShellSearcher) Radius(q geom.Vec3, r float64) []kdtree.Neighbor {
	return shellFilter(s.Inner.Radius(q, s.R2), s.R1*s.R1)
}

// RadiusBatch implements Searcher with the shell substitution: the batch
// runs through the inner RadiusBatch at R2 and each result is re-filtered
// exactly as Radius does per query.
func (s *ShellSearcher) RadiusBatch(qs []geom.Vec3, r float64) [][]kdtree.Neighbor {
	outer := s.Inner.RadiusBatch(qs, s.R2)
	r1sq := s.R1 * s.R1
	for i, res := range outer {
		outer[i] = shellFilter(res, r1sq)
	}
	return outer
}

// Nearest implements Searcher (undistorted).
func (s *ShellSearcher) Nearest(q geom.Vec3) (kdtree.Neighbor, bool) {
	return s.Inner.Nearest(q)
}

// NearestBatch implements Searcher (undistorted).
func (s *ShellSearcher) NearestBatch(qs []geom.Vec3) []kdtree.Neighbor {
	return s.Inner.NearestBatch(qs)
}

// KNearest implements Searcher (undistorted).
func (s *ShellSearcher) KNearest(q geom.Vec3, k int) []kdtree.Neighbor {
	return s.Inner.KNearest(q, k)
}

// KNearestBatch implements Searcher (undistorted).
func (s *ShellSearcher) KNearestBatch(qs []geom.Vec3, k int) [][]kdtree.Neighbor {
	return s.Inner.KNearestBatch(qs, k)
}

// SetStage forwards stage attribution to the wrapped searcher.
func (s *ShellSearcher) SetStage(stage string) { TagStage(s.Inner, stage) }

// SetParallelism implements Searcher by delegation.
func (s *ShellSearcher) SetParallelism(n int) { s.Inner.SetParallelism(n) }

// Parallelism implements Searcher by delegation.
func (s *ShellSearcher) Parallelism() int { return s.Inner.Parallelism() }

// Slab implements Searcher.
func (s *ShellSearcher) Slab() *cloud.Slab { return s.Inner.Slab() }

// Metrics implements Searcher.
func (s *ShellSearcher) Metrics() *Metrics { return s.Inner.Metrics() }
