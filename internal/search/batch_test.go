package search

import (
	"math/rand"
	"testing"

	"tigris/internal/geom"
	"tigris/internal/kdtree"
	"tigris/internal/twostage"
)

// backendCase builds a fresh searcher over pts; fresh instances per call
// keep per-instance metrics and approximate leader state independent.
type backendCase struct {
	name  string
	exact bool // batch must be bit-identical to per-query calls
	build func(pts []geom.Vec3) Searcher
}

func backendCases() []backendCase {
	return []backendCase{
		{"canonical", true, func(pts []geom.Vec3) Searcher {
			return NewKDSearcher(pts)
		}},
		{"twostage-exact", true, func(pts []geom.Vec3) Searcher {
			return NewTwoStageSearcher(pts, TwoStageConfig{TopHeight: 5})
		}},
		{"twostage-approx", false, func(pts []geom.Vec3) Searcher {
			return NewTwoStageSearcher(pts, TwoStageConfig{
				TopHeight: 5,
				Approx:    &twostage.ApproxOptions{Threshold: 1.2, RadiusThresholdFrac: 0.4},
			})
		}},
		{"kthnn-inject", true, func(pts []geom.Vec3) Searcher {
			return &KthNNSearcher{Inner: NewKDSearcher(pts), K: 3}
		}},
		{"shell-inject", true, func(pts []geom.Vec3) Searcher {
			return &ShellSearcher{Inner: NewTwoStageSearcher(pts, TwoStageConfig{TopHeight: 4}), R1: 0.5, R2: 2.5}
		}},
	}
}

func sameNeighbor(a, b kdtree.Neighbor) bool {
	return a.Index == b.Index && a.Dist2 == b.Dist2
}

func sameNeighbors(a, b []kdtree.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !sameNeighbor(a[i], b[i]) {
			return false
		}
	}
	return true
}

// TestBatchMatchesSequential is the core equivalence table: for every
// exact backend and every parallelism, the batch methods must return
// bit-identical results to per-query calls on a fresh instance.
func TestBatchMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	pts := randPoints(r, 1500)
	qs := randPoints(r, 400)
	const radius, k = 2.0, 6

	for _, bc := range backendCases() {
		if !bc.exact {
			continue
		}
		// Sequential reference on its own instance.
		ref := bc.build(pts)
		wantNN := make([]kdtree.Neighbor, len(qs))
		wantKNN := make([][]kdtree.Neighbor, len(qs))
		wantRad := make([][]kdtree.Neighbor, len(qs))
		for i, q := range qs {
			nb, ok := ref.Nearest(q)
			if !ok {
				nb = kdtree.Neighbor{Index: -1}
			}
			wantNN[i] = nb
			wantKNN[i] = ref.KNearest(q, k)
			wantRad[i] = ref.Radius(q, radius)
		}
		for _, parallelism := range []int{1, 2, 8} {
			s := bc.build(pts)
			s.SetParallelism(parallelism)
			gotNN := s.NearestBatch(qs)
			gotKNN := s.KNearestBatch(qs, k)
			gotRad := s.RadiusBatch(qs, radius)
			for i := range qs {
				if !sameNeighbor(gotNN[i], wantNN[i]) {
					t.Fatalf("%s/p%d: NearestBatch[%d] = %+v, want %+v",
						bc.name, parallelism, i, gotNN[i], wantNN[i])
				}
				if !sameNeighbors(gotKNN[i], wantKNN[i]) {
					t.Fatalf("%s/p%d: KNearestBatch[%d] mismatch", bc.name, parallelism, i)
				}
				if !sameNeighbors(gotRad[i], wantRad[i]) {
					t.Fatalf("%s/p%d: RadiusBatch[%d] mismatch", bc.name, parallelism, i)
				}
			}
		}
	}
}

// TestApproxBatchDeterministic: the approximate backend's batch results
// must depend only on the query batch — not on the Parallelism knob or
// goroutine scheduling — and must equal a serial per-chunk-session replay
// of the same algorithm.
func TestApproxBatchDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	pts := randPoints(r, 4000)
	// Clustered queries so followers actually occur.
	qs := make([]geom.Vec3, 900)
	for i := range qs {
		base := pts[r.Intn(len(pts))]
		qs[i] = base.Add(geom.Vec3{X: r.Float64()*0.4 - 0.2, Y: r.Float64()*0.4 - 0.2})
	}
	opts := twostage.ApproxOptions{Threshold: 1.2, RadiusThresholdFrac: 0.4}
	build := func() *TwoStageSearcher {
		return NewTwoStageSearcher(pts, TwoStageConfig{TopHeight: 5, Approx: &opts})
	}
	const radius = 1.5

	// Serial reference: one fresh session per ApproxBatchChunk queries,
	// exactly the contract batch.go documents.
	refTree := build().Tree()
	wantNN := make([]kdtree.Neighbor, len(qs))
	wantRad := make([][]kdtree.Neighbor, len(qs))
	for lo := 0; lo < len(qs); lo += ApproxBatchChunk {
		hi := lo + ApproxBatchChunk
		if hi > len(qs) {
			hi = len(qs)
		}
		nnSess := refTree.NewApproxSession(opts)
		for i := lo; i < hi; i++ {
			wantNN[i], _ = nnSess.Nearest(qs[i], nil)
		}
		radSess := refTree.NewApproxSession(opts)
		for i := lo; i < hi; i++ {
			wantRad[i] = radSess.Radius(qs[i], radius, nil)
		}
	}

	for _, parallelism := range []int{1, 3, 8} {
		s := build()
		s.SetParallelism(parallelism)
		gotNN := s.NearestBatch(qs)
		gotRad := s.RadiusBatch(qs, radius)
		for i := range qs {
			if !sameNeighbor(gotNN[i], wantNN[i]) {
				t.Fatalf("p%d: approx NearestBatch[%d] = %+v, want %+v",
					parallelism, i, gotNN[i], wantNN[i])
			}
			if !sameNeighbors(gotRad[i], wantRad[i]) {
				t.Fatalf("p%d: approx RadiusBatch[%d] mismatch", parallelism, i)
			}
		}
		if s.Stats().FollowerHits == 0 {
			t.Errorf("p%d: expected follower hits in approximate batch", parallelism)
		}
	}
}

// TestBatchMetricsMerge: the per-worker stats shards must merge into the
// same totals the sequential path records — queries always, and visit
// counts exactly for the exact backends.
func TestBatchMetricsMerge(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	pts := randPoints(r, 1000)
	qs := randPoints(r, 300)

	for _, bc := range backendCases() {
		ref := bc.build(pts)
		for _, q := range qs {
			ref.Radius(q, 1.5)
			ref.Nearest(q)
		}
		refM := ref.Metrics()

		s := bc.build(pts)
		s.SetParallelism(8)
		s.RadiusBatch(qs, 1.5)
		s.NearestBatch(qs)
		m := s.Metrics()

		// The error-injection wrappers issue a different number of inner
		// queries per Nearest (KNearest under the hood); only compare
		// query counts on the direct backends.
		if bc.exact && bc.name != "kthnn-inject" && bc.name != "shell-inject" {
			if m.Queries != refM.Queries {
				t.Errorf("%s: batch queries %d, sequential %d", bc.name, m.Queries, refM.Queries)
			}
			if m.NodesVisited != refM.NodesVisited {
				t.Errorf("%s: batch visits %d, sequential %d", bc.name, m.NodesVisited, refM.NodesVisited)
			}
		}
		if m.Queries <= 0 || m.NodesVisited <= 0 {
			t.Errorf("%s: empty merged metrics: %+v", bc.name, m)
		}
		if m.SearchTime <= 0 {
			t.Errorf("%s: batch wall time not recorded", bc.name)
		}
	}
}

// TestBatchEmptyAndTiny covers the degenerate shapes: empty query slices,
// empty trees, and batches smaller than the worker pool.
func TestBatchEmptyAndTiny(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	pts := randPoints(r, 50)
	for _, bc := range backendCases() {
		s := bc.build(pts)
		s.SetParallelism(8)
		if got := s.NearestBatch(nil); len(got) != 0 {
			t.Errorf("%s: NearestBatch(nil) returned %d results", bc.name, len(got))
		}
		if got := s.RadiusBatch([]geom.Vec3{{}}, 1); len(got) != 1 {
			t.Errorf("%s: single-query batch size %d", bc.name, len(got))
		}
	}
	// Empty tree: every NearestBatch entry is a miss.
	empty := NewKDSearcher(nil)
	empty.SetParallelism(4)
	for _, nb := range empty.NearestBatch(randPoints(r, 5)) {
		if nb.Index >= 0 {
			t.Errorf("empty tree returned hit %+v", nb)
		}
	}
}

// TestSetParallelismResolution: the knob resolves like par.Workers.
func TestSetParallelismResolution(t *testing.T) {
	s := NewKDSearcher(randPoints(rand.New(rand.NewSource(15)), 10))
	s.SetParallelism(3)
	if s.Parallelism() != 3 {
		t.Errorf("Parallelism() = %d, want 3", s.Parallelism())
	}
	s.SetParallelism(0)
	if s.Parallelism() < 1 {
		t.Errorf("Parallelism() = %d, want >= 1", s.Parallelism())
	}
}
