package loop

import (
	"testing"

	"tigris/internal/cloud"
	"tigris/internal/dse"
	"tigris/internal/registration"
	"tigris/internal/synth"
)

// circuitSequence renders a closed circuit plus a few revisit frames:
// frame perLap+k re-observes frame k's pose exactly.
func circuitSequence(t *testing.T, frames, perLap int) *synth.Sequence {
	t.Helper()
	cfg := synth.QuickSequenceConfig(frames, 77)
	cfg.Trajectory = synth.CircuitTrajectory{Radius: 3, FramesPerLap: perLap}
	return synth.GenerateSequence(cfg)
}

// slamPipeline is the accuracy-oriented design point the SLAM layer
// verifies loops with: the quick synthetic frames are too sparse for the
// performance-oriented points to register a turning trajectory.
func slamPipeline(t testing.TB) registration.PipelineConfig {
	t.Helper()
	for _, dp := range dse.NamedDesignPoints() {
		if dp.Name == "DP7" {
			cfg := dp.Config
			cfg.Searcher.Parallelism = 1
			return cfg
		}
	}
	t.Fatal("DP7 missing")
	return registration.PipelineConfig{}
}

func TestSignatureDeterministicAndDiscriminative(t *testing.T) {
	seq := circuitSequence(t, 3, 40)
	cfg := slamPipeline(t)

	pf0 := registration.PrepareFrame(seq.Frames[0].Clone(), cfg)
	pf0b := registration.PrepareFrame(seq.Frames[0].Clone(), cfg)
	pf1 := registration.PrepareFrame(seq.Frames[1].Clone(), cfg)
	defer pf0.Release()
	defer pf0b.Release()
	defer pf1.Release()

	m0, k0 := Signature(pf0.Desc)
	m0b, k0b := Signature(pf0b.Desc)
	if k0 != k0b {
		t.Fatalf("signature key not deterministic: %v vs %v", k0, k0b)
	}
	for j := range m0 {
		if m0[j] != m0b[j] {
			t.Fatalf("signature mean not deterministic at %d", j)
		}
	}
	m1, _ := Signature(pf1.Desc)
	if l2dist(m0, m1) <= 0 {
		t.Fatal("distinct frames produced identical signatures")
	}

	// Empty descriptors degrade gracefully.
	if m, _ := Signature(nil); m != nil {
		t.Fatal("nil descriptors should give an empty signature")
	}
}

func TestDetectorProposesAndVerifiesRevisit(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline verification")
	}
	perLap := 40
	frames := perLap + 6 // one lap plus revisit frames
	seq := circuitSequence(t, frames, perLap)
	cfg := slamPipeline(t)

	det, err := NewDetector(Config{
		Backend:       "twostage",
		MinSeparation: perLap - 2,
		MaxCandidates: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	var accepted []Closure
	for i, f := range seq.Frames {
		c := cloud.SlabFromCloud(f)
		pf := registration.PrepareFrameSlab(c, cfg)
		cands := det.Observe(i, pf.Desc, c)
		pf.Release()
		for _, cand := range cands {
			if cand.From-cand.To < perLap-2 {
				t.Fatalf("temporal gate violated: %d vs %d", cand.From, cand.To)
			}
			if cl, ok := det.Verify(cand, cfg); ok {
				accepted = append(accepted, cl)
				break
			}
		}
	}
	if len(accepted) == 0 {
		t.Fatal("no loop closure accepted on a closed circuit")
	}
	st := det.Stats()
	if st.Observed != int64(frames) || st.Accepted != int64(len(accepted)) {
		t.Fatalf("stats inconsistent: %+v with %d accepted", st, len(accepted))
	}
	if st.Proposed < st.Accepted || st.Verified < st.Accepted {
		t.Fatalf("counter ordering broken: %+v", st)
	}
	// Every accepted closure must carry a relative transform close to the
	// ground-truth relative pose of its frames — that is the evidence the
	// pose graph consumes.
	for _, cl := range accepted {
		truth := seq.Poses[cl.To].Inverse().Compose(seq.Poses[cl.From])
		errT := cl.Delta.Inverse().Compose(truth)
		if errT.TranslationNorm() > 0.1 {
			t.Errorf("closure %d->%d delta is %.3f m from truth", cl.From, cl.To, errT.TranslationNorm())
		}
	}
}

func TestDetectorCooldownAndGate(t *testing.T) {
	det, err := NewDetector(Config{MinSeparation: 5, Cooldown: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Synthetic signatures via a tiny descriptor matrix; no clouds needed
	// for proposal-only behavior.
	seq := circuitSequence(t, 2, 40)
	cfg := slamPipeline(t)
	pf := registration.PrepareFrame(seq.Frames[0].Clone(), cfg)
	defer pf.Release()
	for i := 0; i < 5; i++ {
		if cands := det.Observe(i, pf.Desc, nil); len(cands) != 0 {
			t.Fatalf("frame %d proposed %v inside the temporal gate", i, cands)
		}
	}
	// Frame 5 may match frame 0 (identical signature — same descriptors).
	cands := det.Observe(5, pf.Desc, nil)
	if len(cands) == 0 || cands[0].To != 0 || cands[0].SigDist != 0 {
		t.Fatalf("frame 5 should match frame 0 exactly, got %v", cands)
	}
	// Without clouds, verification must decline gracefully.
	if _, ok := det.Verify(cands[0], cfg); ok {
		t.Fatal("verification without retained clouds succeeded")
	}
}

func TestDetectorRejectsUnknownBackend(t *testing.T) {
	if _, err := NewDetector(Config{Backend: "no-such-backend"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
}
