// Package loop implements place recognition for the SLAM layer: it
// decides when the sensor has returned to somewhere it has been before,
// and verifies the revisit with the full registration pipeline so the
// pose-graph back-end (internal/posegraph) only ever receives
// geometrically confirmed constraints.
//
// The detector reuses the machinery the previous PRs built instead of
// growing parallel infrastructure:
//
//   - Each prepared frame's descriptors (internal/features, FPFH by
//     default) are aggregated into one compact frame signature — the
//     mean descriptor (stored quantized to uint8 with a per-signature
//     affine code, an 8x shrink of the retained vector) plus a
//     3-component projection of it.
//   - The 3D projections are indexed through any registered
//     search.Backend (the PR 3 registry), so signature retrieval runs on
//     the same pluggable searcher stack as the pipeline's 3D queries.
//   - Candidates pass a temporal gate (no matching against the recent
//     past — consecutive frames always look alike) and are ranked by
//     full-signature distance.
//   - Verification registers the two frames with the existing
//     registration.PrepareFrame / registration.Align path and accepts
//     the closure only on strong geometric consensus (inlier count and
//     ratio, ICP convergence, bounded relative motion).
//
// Everything is deterministic: signatures are fixed-order reductions,
// retrieval uses exact backends' parallelism-invariant results, and
// verification inherits the registration pipeline's bit-identity at any
// Parallelism.
package loop

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"tigris/internal/cloud"
	"tigris/internal/features"
	"tigris/internal/geom"
	"tigris/internal/obs"
	"tigris/internal/registration"
	"tigris/internal/search"
)

// Config parameterizes a Detector. The zero value selects the
// documented defaults.
type Config struct {
	// Backend is the registry name of the search backend the signature
	// index is built with ("" = canonical). Any registered backend works;
	// the index holds one 3D point per observed frame.
	Backend string
	// Options is the backend's option bag (see search.Opt* keys).
	Options search.Options
	// MinSeparation is the temporal gate: a frame only matches frames at
	// least this many indices older (default 15).
	MinSeparation int
	// MaxCandidates bounds how many gated signature neighbors are
	// proposed per frame, best signature distance first (default 2).
	MaxCandidates int
	// MaxSignatureDist drops candidates whose full-signature L2 distance
	// exceeds it (0 = no signature gate; verification is the filter).
	MaxSignatureDist float64
	// Cooldown suppresses proposals for this many frames after an
	// accepted closure, so one revisit does not spend a verification on
	// every frame along it (default MinSeparation/2).
	Cooldown int
	// MinInliers is the verification floor on RANSAC-consistent
	// correspondences (default 12).
	MinInliers int
	// MinInlierRatio is the verification floor on inliers/correspondences
	// (default 0.5).
	MinInlierRatio float64
	// MaxRMSE rejects verifications whose final ICP RMSE exceeds it
	// (default 0.3 m).
	MaxRMSE float64
	// TightRMSE accepts a verification on ICP evidence alone when the
	// final RMSE is at or below it (default MaxRMSE/3): a fit this tight
	// is a confirmed revisit even when the sparse key-point features
	// yielded few RANSAC inliers, which happens routinely on low-beam
	// frames.
	TightRMSE float64
	// MaxDeltaTranslation rejects verified transforms that move more than
	// this many meters (default 10) — a candidate is supposed to be a
	// near-revisit, so a huge relative motion means the registration
	// locked onto the wrong structure.
	MaxDeltaTranslation float64
	// ExactSignatures disables the uint8 signature quantization and
	// retains full float64 signature vectors — a validation knob for
	// comparing the quantized detector's accepted-closure set against the
	// exact one (the two match on the test circuits; quantization error
	// is orders of magnitude below the inter-frame signature distances
	// the candidate ranking discriminates).
	ExactSignatures bool
	// Obs, when non-nil, records the signature-ranking span (the
	// obs.StageLoopObserve series: aggregation, index maintenance, and
	// candidate ranking — the cheap per-frame half of place recognition;
	// verification is timed by the caller, which owns the pipeline
	// config). Recording never changes proposals; nil records nothing.
	Obs *obs.Recorder
}

func (c *Config) defaults() {
	if c.MinSeparation == 0 {
		c.MinSeparation = 15
	}
	if c.MaxCandidates == 0 {
		c.MaxCandidates = 2
	}
	if c.Cooldown == 0 {
		c.Cooldown = c.MinSeparation / 2
	}
	if c.MinInliers == 0 {
		c.MinInliers = 12
	}
	if c.MinInlierRatio == 0 {
		c.MinInlierRatio = 0.5
	}
	if c.MaxRMSE == 0 {
		c.MaxRMSE = 0.3
	}
	if c.TightRMSE == 0 {
		c.TightRMSE = c.MaxRMSE / 3
	}
	if c.MaxDeltaTranslation == 0 {
		c.MaxDeltaTranslation = 10
	}
}

// Candidate is a proposed loop pair awaiting verification: frame From
// (newer) may be a revisit of frame To (older).
type Candidate struct {
	From, To int
	// SigDist is the full-signature L2 distance that ranked the pair.
	SigDist float64
}

// Closure is a verified loop constraint: Delta registers frame From onto
// frame To, i.e. Pose[From] ≈ Pose[To] ∘ Delta — exactly the shape of a
// posegraph.Edge{I: To, J: From, Z: Delta}.
type Closure struct {
	From, To int
	Delta    geom.Transform
	// Inliers / Correspondences / RMSE are the verification evidence.
	Inliers, Correspondences int
	RMSE                     float64
	SigDist                  float64
}

// Stats counts a detector's work.
type Stats struct {
	// Observed frames, proposed candidates, verification attempts, and
	// accepted closures.
	Observed, Proposed, Verified, Accepted int64
}

// signature is one frame's place fingerprint. The mean descriptor is
// held quantized (q) unless Config.ExactSignatures asked for the full
// float64 vector (mean).
type signature struct {
	index int
	// q is the quantized mean descriptor (the default representation).
	q QuantizedSignature
	// mean is the exact mean descriptor, retained only under
	// Config.ExactSignatures.
	mean []float64
	// key is the 3D projection indexed by the search backend.
	key geom.Vec3
}

// dist returns the L2 distance between this signature's (dequantized)
// vector and the query's dequantized vector.
func (s *signature) dist(query []float64) float64 {
	if s.mean != nil {
		return l2dist(query, s.mean)
	}
	var sum float64
	for i, v := range query {
		d := v - s.q.At(i)
		sum += d * d
	}
	return math.Sqrt(sum)
}

// QuantizedSignature is a signature vector quantized to uint8 codes with
// a per-signature affine dequantization (value = Offset + Scale·code):
// 1 byte per dimension instead of 8, with the code range stretched over
// exactly this vector's [min, max]. A SLAM session retains one signature
// per observed frame forever, so the 8x shrink bounds the place
// recognition memory that grows without bound.
type QuantizedSignature struct {
	Codes  []uint8
	Offset float64
	Scale  float64
}

// QuantizeSignature quantizes v with a per-vector affine code.
func QuantizeSignature(v []float64) QuantizedSignature {
	q := QuantizedSignature{Codes: make([]uint8, len(v))}
	if len(v) == 0 {
		return q
	}
	lo, hi := v[0], v[0]
	for _, x := range v[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	q.Offset = lo
	if hi > lo {
		q.Scale = (hi - lo) / 255
		inv := 255 / (hi - lo)
		for i, x := range v {
			// Round to nearest code; clamp against the float edge cases.
			c := int(math.Round((x - lo) * inv))
			if c < 0 {
				c = 0
			}
			if c > 255 {
				c = 255
			}
			q.Codes[i] = uint8(c)
		}
	}
	return q
}

// At dequantizes dimension i.
func (q QuantizedSignature) At(i int) float64 {
	return q.Offset + q.Scale*float64(q.Codes[i])
}

// Dequantize materializes the dequantized vector.
func (q QuantizedSignature) Dequantize() []float64 {
	out := make([]float64, len(q.Codes))
	for i := range out {
		out[i] = q.At(i)
	}
	return out
}

// Bytes returns the retained payload size (codes + the affine pair).
func (q QuantizedSignature) Bytes() int { return len(q.Codes) + 16 }

// Detector accumulates frame signatures and proposes/verifies loop
// candidates. Methods are safe for concurrent use (a pipelined streaming
// engine observes from its alignment stage while a separate worker
// verifies).
type Detector struct {
	cfg Config

	mu     sync.Mutex
	sigs   []signature
	clouds map[int]*cloud.Slab
	// searcher indexes sigs[i].key positionally; rebuilt lazily when
	// frames were added since the last proposal.
	searcher search.Searcher
	indexed  int
	lastHit  int // index of the last frame that produced an accepted closure
	stats    Stats
}

// Validate reports whether the configured signature backend exists and
// accepts the options, without constructing a detector — the boundary
// check (HTTP session creation, CLI flags) mirroring
// registration.SearcherConfig.Validate.
func (c Config) Validate() error {
	if _, err := search.NewByName(backendName(c), nil, c.Options); err != nil {
		return fmt.Errorf("loop: %w", err)
	}
	return nil
}

// NewDetector validates the backend selection and returns an empty
// detector.
func NewDetector(cfg Config) (*Detector, error) {
	cfg.defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg, clouds: make(map[int]*cloud.Slab), lastHit: -1 << 30}, nil
}

func backendName(cfg Config) string {
	if cfg.Backend == "" {
		return search.BackendCanonical
	}
	return cfg.Backend
}

// Signature aggregates a descriptor matrix into the frame's fingerprint:
// the mean descriptor row (a fixed-order reduction, so the result is
// independent of any parallelism) and its 3D projection — the centroids
// of the vector's three equal bands, which for FPFH are the three
// Darboux-angle histograms. Exposed for tests and tooling.
func Signature(d *features.Descriptors) (mean []float64, key geom.Vec3) {
	if d == nil || d.Dim == 0 || d.Count() == 0 {
		return nil, geom.Vec3{}
	}
	dim := d.Dim
	mean = make([]float64, dim)
	for i := 0; i < d.Count(); i++ {
		row := d.Row(i)
		for j, v := range row {
			mean[j] += v
		}
	}
	inv := 1 / float64(d.Count())
	for j := range mean {
		mean[j] *= inv
	}
	third := dim / 3
	if third == 0 {
		third = 1
	}
	centroid := func(lo, hi int) float64 {
		if hi > dim {
			hi = dim
		}
		var mass, moment float64
		for j := lo; j < hi; j++ {
			mass += mean[j]
			moment += mean[j] * float64(j-lo)
		}
		if mass <= 0 {
			return 0
		}
		return moment / mass
	}
	key = geom.Vec3{
		X: centroid(0, third),
		Y: centroid(third, 2*third),
		Z: centroid(2*third, dim),
	}
	return mean, key
}

// Observe ingests frame index's front-end products: it computes the
// frame's signature from desc, retains c for later verification, and
// returns the loop candidates the signature index proposes (subject to
// the temporal gate, the signature gate, and the cooldown). desc is read
// synchronously and not retained, so callers may release the prepared
// frame afterwards; the detector takes ownership of c, which must not
// be mutated afterwards (pass a clone if the pipeline keeps writing to
// it). Frames must be observed in increasing index order.
//
// Signatures are retained uint8-quantized (see QuantizedSignature); the
// query side of every ranking is the freshly-computed mean passed
// through the same quantize/dequantize round trip, so both sides of a
// distance carry identical quantization treatment.
func (d *Detector) Observe(index int, desc *features.Descriptors, c *cloud.Slab) []Candidate {
	span := d.cfg.Obs.Start(obs.StageLoopObserve)
	defer span.End()
	mean, key := Signature(desc)
	var qsig QuantizedSignature
	queryVec := mean
	if mean != nil && !d.cfg.ExactSignatures {
		qsig = QuantizeSignature(mean)
		queryVec = qsig.Dequantize()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Observed++

	var cands []Candidate
	gate := index - d.cfg.MinSeparation
	if mean != nil && index-d.lastHit > d.cfg.Cooldown {
		// The gated prefix of past signatures is eligible. Rebuild the
		// index only when it grew (one tiny build per frame at most; the
		// index holds one point per frame).
		n := 0
		for n < len(d.sigs) && d.sigs[n].index <= gate {
			n++
		}
		if n > 0 {
			if d.searcher == nil || d.indexed != n {
				pts := make([]geom.Vec3, n)
				for i := 0; i < n; i++ {
					pts[i] = d.sigs[i].key
				}
				s, err := search.NewByName(backendName(d.cfg), pts, d.cfg.Options)
				if err != nil {
					// Validated at construction; an error here means the
					// options stopped being valid mid-session.
					panic(fmt.Sprintf("loop: %v", err))
				}
				d.searcher = s
				d.indexed = n
			}
			for _, nb := range d.searcher.KNearest(key, d.cfg.MaxCandidates) {
				if nb.Index < 0 || nb.Index >= n {
					continue
				}
				sig := &d.sigs[nb.Index]
				dist := sig.dist(queryVec)
				if d.cfg.MaxSignatureDist > 0 && dist > d.cfg.MaxSignatureDist {
					continue
				}
				cands = append(cands, Candidate{From: index, To: sig.index, SigDist: dist})
			}
			// Most promising first: the 3D key ranked the retrieval, the
			// full-signature distance ranks the verification order (callers
			// typically stop at the first accepted closure).
			sort.Slice(cands, func(a, b int) bool {
				if cands[a].SigDist != cands[b].SigDist {
					return cands[a].SigDist < cands[b].SigDist
				}
				return cands[a].To < cands[b].To
			})
			d.stats.Proposed += int64(len(cands))
		}
	}

	if mean != nil {
		stored := signature{index: index, key: key}
		if d.cfg.ExactSignatures {
			stored.mean = mean
		} else {
			stored.q = qsig
		}
		d.sigs = append(d.sigs, stored)
		// Retain the cloud only for frames that entered the signature
		// index: a signature-less frame (no descriptors) can never be
		// proposed as either side of a closure, so keeping its points
		// would only leak one cloud per degenerate frame.
		if c != nil {
			d.clouds[index] = c
		}
	}
	return cands
}

// Verify registers the candidate pair through the full
// PrepareFrame/Align path (on private clones, so retained clouds are
// never mutated concurrently) and accepts the closure only on strong
// geometric consensus. cfg is the registration configuration to verify
// with — callers typically pass their pipeline config, possibly pinned
// to a worker share; exact backends make the outcome identical at any
// Parallelism.
func (d *Detector) Verify(cand Candidate, cfg registration.PipelineConfig) (Closure, bool) {
	d.mu.Lock()
	from, okFrom := d.clouds[cand.From]
	to, okTo := d.clouds[cand.To]
	if okFrom && okTo {
		d.stats.Verified++
	}
	d.mu.Unlock()
	if !okFrom || !okTo {
		return Closure{}, false
	}

	pf := registration.PrepareFrameSlab(from.Clone(), cfg)
	pt := registration.PrepareFrameSlab(to.Clone(), cfg)
	res := registration.Align(pf, pt, cfg)
	pf.Release()
	pt.Release()

	cl := Closure{
		From:            cand.From,
		To:              cand.To,
		Delta:           res.Transform,
		Inliers:         res.Inliers,
		Correspondences: res.Correspondences,
		RMSE:            res.ICP.FinalRMSE,
		SigDist:         cand.SigDist,
	}
	if !res.ICP.Converged || res.ICP.FinalRMSE > d.cfg.MaxRMSE {
		return cl, false
	}
	if res.Transform.TranslationNorm() > d.cfg.MaxDeltaTranslation {
		return cl, false
	}
	// Geometric consensus: either the feature stage agrees broadly, or
	// the fine-tuning fit is tight enough to stand on its own.
	featureOK := res.Correspondences > 0 &&
		res.Inliers >= d.cfg.MinInliers &&
		float64(res.Inliers) >= d.cfg.MinInlierRatio*float64(res.Correspondences)
	if !featureOK && res.ICP.FinalRMSE > d.cfg.TightRMSE {
		return cl, false
	}
	d.mu.Lock()
	if cand.From > d.lastHit {
		d.lastHit = cand.From
	}
	d.stats.Accepted++
	d.mu.Unlock()
	return cl, true
}

// Stats snapshots the work counters.
func (d *Detector) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// SignatureBytes reports the retained signature payload across all
// observed frames (the quantity the uint8 quantization shrinks 8x
// against float64 vectors).
func (d *Detector) SignatureBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var b int64
	for i := range d.sigs {
		if d.sigs[i].mean != nil {
			b += int64(len(d.sigs[i].mean)) * 8
		} else {
			b += int64(d.sigs[i].q.Bytes())
		}
	}
	return b
}

// Frames reports how many frames have been observed.
func (d *Detector) Frames() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.sigs)
}

func l2dist(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
