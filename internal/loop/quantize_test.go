package loop

import (
	"math"
	"math/rand"
	"testing"

	"tigris/internal/cloud"
	"tigris/internal/registration"
)

func TestQuantizeSignatureRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		v := make([]float64, 33)
		for i := range v {
			v[i] = r.Float64()*20 - 10
		}
		q := QuantizeSignature(v)
		if len(q.Codes) != len(v) {
			t.Fatalf("code count %d, want %d", len(q.Codes), len(v))
		}
		// Dequantization error is bounded by half a code step per
		// dimension.
		half := q.Scale/2 + 1e-12
		for i, x := range v {
			if d := math.Abs(q.At(i) - x); d > half {
				t.Fatalf("dim %d: error %g exceeds half-step %g", i, d, half)
			}
		}
		dq := q.Dequantize()
		for i := range dq {
			if dq[i] != q.At(i) {
				t.Fatal("Dequantize disagrees with At")
			}
		}
	}
}

func TestQuantizeSignatureDegenerate(t *testing.T) {
	if q := QuantizeSignature(nil); len(q.Codes) != 0 || q.Bytes() != 16 {
		t.Errorf("empty signature: %+v, Bytes %d", q, q.Bytes())
	}
	// A constant vector has zero range: every code dequantizes to the
	// constant exactly.
	q := QuantizeSignature([]float64{3.5, 3.5, 3.5})
	for i := 0; i < 3; i++ {
		if q.At(i) != 3.5 {
			t.Fatalf("constant vector dim %d dequantized to %v", i, q.At(i))
		}
	}
	if q.Bytes() != 3+16 {
		t.Errorf("Bytes = %d, want 19", q.Bytes())
	}
}

// TestQuantizedClosureSetUnchanged is the PR's acceptance test for the
// uint8 signatures: over a drift-circuit sequence, the quantized detector
// must accept exactly the same closure set (From, To pairs) as a detector
// running exact float64 signatures, while retaining ~8x less signature
// memory.
func TestQuantizedClosureSetUnchanged(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline verification")
	}
	perLap := 40
	frames := perLap + 6
	seq := circuitSequence(t, frames, perLap)
	cfg := slamPipeline(t)

	base := Config{
		Backend:       "twostage",
		MinSeparation: perLap - 2,
		MaxCandidates: 2,
	}
	exact := base
	exact.ExactSignatures = true

	run := func(c Config) ([]Closure, *Detector) {
		det, err := NewDetector(c)
		if err != nil {
			t.Fatal(err)
		}
		var accepted []Closure
		for i, f := range seq.Frames {
			s := cloud.SlabFromCloud(f)
			pf := registration.PrepareFrameSlab(s, cfg)
			cands := det.Observe(i, pf.Desc, s)
			pf.Release()
			for _, cand := range cands {
				if cl, ok := det.Verify(cand, cfg); ok {
					accepted = append(accepted, cl)
					break
				}
			}
		}
		return accepted, det
	}

	quantized, qdet := run(base)
	exactSet, _ := run(exact)

	if len(quantized) == 0 {
		t.Fatal("quantized detector accepted no closures on a closed circuit")
	}
	if len(quantized) != len(exactSet) {
		t.Fatalf("closure counts differ: quantized %d, exact %d", len(quantized), len(exactSet))
	}
	for i := range quantized {
		if quantized[i].From != exactSet[i].From || quantized[i].To != exactSet[i].To {
			t.Errorf("closure %d: quantized %d->%d, exact %d->%d",
				i, quantized[i].From, quantized[i].To, exactSet[i].From, exactSet[i].To)
		}
	}
	// The retained signature memory must reflect the 8x code shrink:
	// well under what float64 vectors would cost.
	dim := 33 // FPFH
	aosBytes := int64(frames * dim * 8)
	if got := qdet.SignatureBytes(); got >= aosBytes/4 {
		t.Errorf("quantized signature memory %d B not well below float64 %d B", got, aosBytes)
	}
}
